#include "obs/export.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/profile_export.h"

namespace fedcal::obs {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

namespace {

std::string Quote(const std::string& s) { return JsonQuote(s); }

void AppendCandidateJson(std::string* out, const CandidatePlanRecord& c) {
  *out += "{\"option\": " + std::to_string(c.option_index) +
          ", \"servers\": " + Quote(c.server_set) +
          ", \"total_calibrated_s\": " +
          FormatMetricValue(c.total_calibrated_seconds) +
          ", \"total_raw_s\": " + FormatMetricValue(c.total_raw_seconds) +
          ", \"chosen\": " + (c.chosen ? "true" : "false") +
          ", \"in_rotation_group\": " +
          (c.in_rotation_group ? "true" : "false") +
          ", \"rejection_reason\": " + Quote(c.rejection_reason) +
          ", \"fragments\": [";
  for (size_t f = 0; f < c.fragments.size(); ++f) {
    const FragmentCostRecord& fr = c.fragments[f];
    *out += std::string(f ? ", " : "") + "{\"server\": " + Quote(fr.server_id) +
            ", \"raw_s\": " + FormatMetricValue(fr.raw_estimated_seconds) +
            ", \"calibrated_s\": " +
            FormatMetricValue(fr.calibrated_seconds) + "}";
  }
  *out += "]}";
}

}  // namespace

std::string DecisionToJson(const DecisionRecord& record) {
  std::string out = "{\n";
  out += "  \"query_id\": " + std::to_string(record.query_id) + ",\n";
  out += "  \"sql\": " + Quote(record.sql) + ",\n";
  out += "  \"at\": " + FormatMetricValue(record.at) + ",\n";
  out += "  \"cache_hit\": ";
  out += record.cache_hit ? "true" : "false";
  out += ",\n";
  out += "  \"routing_epoch\": " + std::to_string(record.routing_epoch) +
         ",\n";
  out += "  \"chosen_index\": " + std::to_string(record.chosen_index) + ",\n";
  out += "  \"balance_level\": " + Quote(record.balance_level) + ",\n";
  out += "  \"cost_tolerance\": " + FormatMetricValue(record.cost_tolerance) +
         ",\n";
  out += "  \"rotation_counter\": " + std::to_string(record.rotation_counter) +
         ",\n";
  out += std::string("  \"workload_threshold_met\": ") +
         (record.workload_threshold_met ? "true" : "false") + ",\n";
  out += "  \"rotation_group\": [";
  for (size_t i = 0; i < record.rotation_group.size(); ++i) {
    out += std::string(i ? ", " : "") + std::to_string(record.rotation_group[i]);
  }
  out += "],\n";
  out += "  \"candidates_truncated\": " +
         std::to_string(record.candidates_truncated) + ",\n";
  out += "  \"candidates\": [";
  for (size_t i = 0; i < record.candidates.size(); ++i) {
    out += i ? ",\n    " : "\n    ";
    AppendCandidateJson(&out, record.candidates[i]);
  }
  out += record.candidates.empty() ? "],\n" : "\n  ],\n";
  out += "  \"server_states\": [";
  for (size_t i = 0; i < record.server_states.size(); ++i) {
    const ServerStateRecord& s = record.server_states[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"server\": " + Quote(s.server_id) +
           ", \"calibration_factor\": " +
           FormatMetricValue(s.calibration_factor) +
           ", \"calibration_samples\": " +
           std::to_string(s.calibration_samples) +
           ", \"reliability_multiplier\": " +
           FormatMetricValue(s.reliability_multiplier) +
           ", \"available\": " + (s.available ? "true" : "false") +
           ", \"breaker\": " + Quote(s.breaker_state) + "}";
  }
  out += record.server_states.empty() ? "]" : "\n  ]";
  // Optional member, present only for profiled runs: records written
  // before profiling existed (or with it off) serialize byte-identically
  // to the old format, and readers treat absence as "no profile".
  if (record.profile != nullptr) {
    out += ",\n  \"profile\": " + ProfileToJson(*record.profile);
  }
  out += "\n}\n";
  return out;
}

std::string RecorderToJson(const FlightRecorder& recorder) {
  std::string out = "{\n\"decisions\": [";
  bool first = true;
  for (const DecisionRecord& d : recorder.decisions()) {
    out += first ? "\n" : ",\n";
    out += DecisionToJson(d);
    first = false;
  }
  out += "],\n\"series\": {";
  first = true;
  for (const std::string& sid : recorder.SampledServers()) {
    out += first ? "\n" : ",\n";
    out += "  " + Quote(sid) + ": {";
    bool first_metric = true;
    for (size_t m = 0; m < kNumServerMetrics; ++m) {
      const auto metric = static_cast<ServerMetric>(m);
      const TimeSeriesRing* ring = recorder.Series(sid, metric);
      if (ring == nullptr) continue;
      out += first_metric ? "\n" : ",\n";
      out += std::string("    \"") + ServerMetricName(metric) + "\": [";
      for (size_t i = 0; i < ring->size(); ++i) {
        const TimePoint& p = ring->at(i);
        out += std::string(i ? ", " : "") + "[" + FormatMetricValue(p.t) +
               ", " + FormatMetricValue(p.value) + "]";
      }
      out += "]";
      first_metric = false;
    }
    out += first_metric ? "}" : "\n  }";
    first = false;
  }
  out += first ? "},\n" : "\n},\n";
  out += "\"drift_events\": [";
  first = true;
  for (const DriftEvent& e : recorder.drift_events()) {
    out += first ? "\n" : ",\n";
    out += "  {\"server\": " + Quote(e.server_id) +
           ", \"at\": " + FormatMetricValue(e.at) +
           ", \"reference\": " + FormatMetricValue(e.reference) +
           ", \"current\": " + FormatMetricValue(e.current) +
           ", \"change_fraction\": " + FormatMetricValue(e.change_fraction) +
           "}";
    first = false;
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"reroutes\": [";
  first = true;
  for (const ReRouteRecord& r : recorder.reroutes()) {
    out += first ? "\n  " : ",\n  ";
    out += ReRouteToJson(r);
    first = false;
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"notes\": [";
  first = true;
  for (const RecorderNote& n : recorder.notes()) {
    out += first ? "\n" : ",\n";
    out += "  {\"at\": " + FormatMetricValue(n.at) +
           ", \"source\": " + Quote(n.source) + ", \"text\": " + Quote(n.text) +
           "}";
    first = false;
  }
  out += first ? "]\n" : "\n]\n";
  out += "}\n";
  return out;
}

std::string ExplainText(const DecisionRecord& record) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "routing decision for query %llu at t=%.3fs\n",
                static_cast<unsigned long long>(record.query_id), record.at);
  out += line;
  out += "  sql: " + record.sql + "\n";
  std::snprintf(line, sizeof(line),
                "  compile: %s (routing epoch %llu)\n",
                record.cache_hit ? "prepared-plan cache hit"
                                 : "full compile",
                static_cast<unsigned long long>(record.routing_epoch));
  out += line;
  std::snprintf(line, sizeof(line),
                "  balance=%s tolerance=%.0f%% rotation_counter=%llu "
                "group={",
                record.balance_level.c_str(), record.cost_tolerance * 100.0,
                static_cast<unsigned long long>(record.rotation_counter));
  out += line;
  for (size_t i = 0; i < record.rotation_group.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(record.rotation_group[i]);
  }
  out += "}";
  if (!record.workload_threshold_met) out += " (below workload threshold)";
  out += "\n\n";

  out +=
      "  opt  servers           calibrated    raw        verdict\n"
      "  ---  ----------------  ----------  ----------  -------\n";
  for (const CandidatePlanRecord& c : record.candidates) {
    std::snprintf(line, sizeof(line), "  %-3zu  %-16s  %10.4f  %10.4f  %s\n",
                  c.option_index, c.server_set.c_str(),
                  c.total_calibrated_seconds, c.total_raw_seconds,
                  c.chosen ? "CHOSEN"
                           : (c.rejection_reason.empty()
                                  ? "rejected"
                                  : c.rejection_reason.c_str()));
    out += line;
  }
  if (record.candidates_truncated > 0) {
    out += "  ... (" + std::to_string(record.candidates_truncated) +
           " more candidates not retained)\n";
  }

  const CandidatePlanRecord* chosen = record.Chosen();
  if (chosen != nullptr && !chosen->fragments.empty()) {
    out += "\n  chosen plan fragments:\n";
    for (const FragmentCostRecord& f : chosen->fragments) {
      std::snprintf(line, sizeof(line),
                    "    [%s] raw=%.4f calibrated=%.4f (x%.2f)\n",
                    f.server_id.c_str(), f.raw_estimated_seconds,
                    f.calibrated_seconds,
                    f.raw_estimated_seconds > 0.0
                        ? f.calibrated_seconds / f.raw_estimated_seconds
                        : 0.0);
      out += line;
    }
  }

  if (!record.server_states.empty()) {
    out += "\n  consulted server state:\n";
    for (const ServerStateRecord& s : record.server_states) {
      std::snprintf(line, sizeof(line),
                    "    %-4s factor=%.3f (%zu samples) reliability=x%.2f "
                    "%s breaker=%s\n",
                    s.server_id.c_str(), s.calibration_factor,
                    s.calibration_samples, s.reliability_multiplier,
                    s.available ? "up" : "DOWN", s.breaker_state.c_str());
      out += line;
    }
  }
  return out;
}

std::string ReRouteToJson(const ReRouteRecord& r) {
  std::string out = "{\"query_id\": " + std::to_string(r.query_id) +
                    ", \"sequence\": " + std::to_string(r.sequence) +
                    ", \"at\": " + FormatMetricValue(r.at) +
                    ", \"trigger\": " + Quote(r.trigger) +
                    ", \"routing_epoch\": " + std::to_string(r.routing_epoch) +
                    ", \"remaining_fragments\": " +
                    std::to_string(r.remaining_fragments) +
                    ", \"completed_fragments\": " +
                    std::to_string(r.completed_fragments) +
                    ", \"from_servers\": " + Quote(r.from_servers) +
                    ", \"to_servers\": " + Quote(r.to_servers) +
                    ", \"current_remainder_s\": " +
                    FormatMetricValue(r.current_remainder_seconds) +
                    ", \"best_alternative_s\": " +
                    FormatMetricValue(r.best_alternative_seconds) +
                    ", \"gap_s\": " + FormatMetricValue(r.gap_seconds) +
                    ", \"threshold_s\": " +
                    FormatMetricValue(r.threshold_seconds) +
                    ", \"forced\": " + (r.forced ? "true" : "false") +
                    ", \"switched\": " + (r.switched ? "true" : "false") +
                    ", \"outcome\": " + Quote(r.outcome) + "}";
  return out;
}

std::string ReRouteChainText(const FlightRecorder& recorder,
                             uint64_t query_id) {
  auto chain = recorder.ReRoutesFor(query_id);
  if (chain.empty()) return "";
  std::string out = "\n  mid-query re-route chain (" +
                    std::to_string(chain.size()) + " evaluation" +
                    (chain.size() == 1 ? "" : "s") + "):\n";
  char line[288];
  for (const ReRouteRecord* r : chain) {
    std::snprintf(line, sizeof(line),
                  "    #%zu t=%.3f epoch=%llu %s%s\n", r->sequence, r->at,
                  static_cast<unsigned long long>(r->routing_epoch),
                  r->trigger.c_str(), r->forced ? " [forced]" : "");
    out += line;
    std::snprintf(line, sizeof(line),
                  "       remainder %zu frag(s): %s %.4fs vs best %s %.4fs "
                  "(gap %.4fs, bar %.4fs)\n",
                  r->remaining_fragments, r->from_servers.c_str(),
                  r->current_remainder_seconds,
                  r->to_servers.empty() ? "-" : r->to_servers.c_str(),
                  r->best_alternative_seconds, r->gap_seconds,
                  r->threshold_seconds);
    out += line;
    out += "       -> " + r->outcome + "\n";
  }
  return out;
}

std::string TimelineText(const FlightRecorder& recorder,
                         const std::string& server_id, size_t max_rows) {
  struct Row {
    SimTime t;
    int order;  ///< metric index for stable secondary ordering
    std::string text;
  };
  std::vector<Row> rows;
  bool any = false;
  for (size_t m = 0; m < kNumServerMetrics; ++m) {
    const auto metric = static_cast<ServerMetric>(m);
    const TimeSeriesRing* ring = recorder.Series(server_id, metric);
    if (ring == nullptr) continue;
    any = true;
    for (size_t i = 0; i < ring->size(); ++i) {
      const TimePoint& p = ring->at(i);
      char line[128];
      std::snprintf(line, sizeof(line), "%-24s %.4f",
                    ServerMetricName(metric), p.value);
      rows.push_back(Row{p.t, static_cast<int>(m), line});
    }
  }
  for (const DriftEvent& e : recorder.drift_events()) {
    if (e.server_id != server_id) continue;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "DRIFT calibration factor %.3f -> %.3f (%+.0f%%)",
                  e.reference, e.current,
                  (e.current >= e.reference ? 1.0 : -1.0) *
                      e.change_fraction * 100.0);
    rows.push_back(Row{e.at, static_cast<int>(kNumServerMetrics), line});
  }
  if (!any && rows.empty()) {
    return "  no samples recorded for server " + server_id + "\n";
  }

  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.t != b.t ? a.t < b.t : a.order < b.order;
  });
  size_t start = 0;
  std::string out = "timeline for " + server_id + " (" +
                    std::to_string(rows.size()) + " samples";
  if (max_rows > 0 && rows.size() > max_rows) {
    start = rows.size() - max_rows;
    out += ", last " + std::to_string(max_rows);
  }
  out += ")\n";
  for (size_t i = start; i < rows.size(); ++i) {
    char line[224];
    std::snprintf(line, sizeof(line), "  t=%10.3f  %s\n", rows[i].t,
                  rows[i].text.c_str());
    out += line;
  }
  return out;
}

std::string EventToJson(const HealthEvent& event) {
  std::string out = "{\"seq\": " + std::to_string(event.seq) +
                    ", \"at\": " + FormatMetricValue(event.at) +
                    ", \"type\": " + Quote(EventTypeName(event.type)) +
                    ", \"severity\": " +
                    Quote(EventSeverityName(event.severity)) +
                    ", \"server\": " + Quote(event.server_id) +
                    ", \"query_id\": " + std::to_string(event.query_id) +
                    ", \"span_id\": " + std::to_string(event.span_id) +
                    ", \"message\": " + Quote(event.message) + "}";
  return out;
}

std::string EventLogToJson(const EventLog& log) {
  std::string out = "{\n";
  out += "\"total_emitted\": " + std::to_string(log.total_emitted()) + ",\n";
  out += "\"by_severity\": {";
  for (int s = 0; s < 4; ++s) {
    auto severity = static_cast<EventSeverity>(s);
    out += std::string(s ? ", " : "") + Quote(EventSeverityName(severity)) +
           ": " + std::to_string(log.severity_count(severity));
  }
  out += "},\n";
  out += "\"events\": [";
  bool first = true;
  for (const HealthEvent& e : log.events()) {
    out += first ? "\n  " : ",\n  ";
    out += EventToJson(e);
    first = false;
  }
  out += first ? "]\n" : "\n]\n";
  out += "}\n";
  return out;
}

std::string EventsText(const EventLog& log, size_t max_rows) {
  auto tail = log.Tail(max_rows == 0 ? log.size() : max_rows);
  std::string out = "event log: " + std::to_string(log.total_emitted()) +
                    " emitted, " + std::to_string(log.size()) + " retained";
  if (tail.size() < log.size()) {
    out += ", last " + std::to_string(tail.size());
  }
  out += "\n";
  if (tail.empty()) {
    out += "  (no events)\n";
    return out;
  }
  for (const HealthEvent* e : tail) {
    char line[160];
    std::snprintf(line, sizeof(line), "  #%-5llu t=%9.3f %-5s %-18s %-4s ",
                  static_cast<unsigned long long>(e->seq), e->at,
                  EventSeverityName(e->severity), EventTypeName(e->type),
                  e->server_id.empty() ? "-" : e->server_id.c_str());
    out += line;
    if (e->query_id != 0) {
      out += "q" + std::to_string(e->query_id) + " ";
    }
    out += e->message + "\n";
  }
  return out;
}

std::string AlertToJson(const AlertRecord& alert) {
  std::string out = "{\"id\": " + std::to_string(alert.id) +
                    ", \"rule\": " + Quote(alert.rule) +
                    ", \"severity\": " +
                    Quote(EventSeverityName(alert.severity)) +
                    ", \"server\": " + Quote(alert.server_id) +
                    ", \"fired_at\": " + FormatMetricValue(alert.fired_at) +
                    ", \"resolved_at\": " +
                    FormatMetricValue(alert.resolved_at) +
                    ", \"active\": " + (alert.active() ? "true" : "false") +
                    ", \"value\": " + FormatMetricValue(alert.value) +
                    ", \"threshold\": " + FormatMetricValue(alert.threshold) +
                    ", \"message\": " + Quote(alert.message) +
                    ", \"event_seqs\": [";
  for (size_t i = 0; i < alert.event_seqs.size(); ++i) {
    out += std::string(i ? ", " : "") + std::to_string(alert.event_seqs[i]);
  }
  out += "], \"decision_query_ids\": [";
  for (size_t i = 0; i < alert.decision_query_ids.size(); ++i) {
    out += std::string(i ? ", " : "") +
           std::to_string(alert.decision_query_ids[i]);
  }
  out += "]}";
  return out;
}

std::string AlertsToJson(const HealthEngine& health) {
  std::string out = "{\n";
  out += "\"total_fired\": " + std::to_string(health.total_fired()) + ",\n";
  out += "\"total_resolved\": " + std::to_string(health.total_resolved()) +
         ",\n";
  out += "\"alerts\": [";
  bool first = true;
  for (const AlertRecord& a : health.alerts()) {
    out += first ? "\n  " : ",\n  ";
    out += AlertToJson(a);
    first = false;
  }
  out += first ? "]\n" : "\n]\n";
  out += "}\n";
  return out;
}

namespace {

void AppendAlertLine(std::string* out, const AlertRecord& a) {
  char line[160];
  if (a.active()) {
    std::snprintf(line, sizeof(line), "  [%-5s] #%llu %s since t=%.3f: ",
                  EventSeverityName(a.severity),
                  static_cast<unsigned long long>(a.id), a.rule.c_str(),
                  a.fired_at);
  } else {
    std::snprintf(line, sizeof(line),
                  "  [ok   ] #%llu %s t=%.3f..%.3f: ",
                  static_cast<unsigned long long>(a.id), a.rule.c_str(),
                  a.fired_at, a.resolved_at);
  }
  *out += line;
  *out += a.message;
  if (!a.event_seqs.empty()) {
    *out += " (events";
    for (uint64_t seq : a.event_seqs) *out += " #" + std::to_string(seq);
    if (!a.decision_query_ids.empty()) {
      *out += "; decisions";
      for (uint64_t q : a.decision_query_ids) {
        *out += " q" + std::to_string(q);
      }
    }
    *out += ")";
  }
  *out += "\n";
}

}  // namespace

std::string AlertsText(const HealthEngine& health, size_t max_rows) {
  auto active = health.ActiveAlerts();
  std::string out = "alerts: " + std::to_string(active.size()) + " active, " +
                    std::to_string(health.total_fired()) + " fired, " +
                    std::to_string(health.total_resolved()) +
                    " resolved lifetime\n";
  for (const AlertRecord* a : active) AppendAlertLine(&out, *a);
  size_t resolved_shown = 0;
  for (auto it = health.alerts().rbegin();
       it != health.alerts().rend() &&
       (max_rows == 0 || resolved_shown < max_rows);
       ++it) {
    if (it->active()) continue;
    if (resolved_shown == 0) out += "  recently resolved:\n";
    AppendAlertLine(&out, *it);
    resolved_shown++;
  }
  if (active.empty() && resolved_shown == 0) out += "  (no alerts)\n";
  return out;
}

}  // namespace fedcal::obs
