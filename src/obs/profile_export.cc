#include "obs/profile_export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/macros.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace fedcal::obs {

namespace {

std::string Quote(const std::string& s) { return JsonQuote(s); }

std::string Seconds(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  }
  return buf;
}

/// Lossless double for the machine-read profile JSON: %.17g round-trips
/// every bit through ProfileFromJson, unlike the display-oriented
/// FormatMetricValue (%.9g).
std::string JsonDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  if (std::isnan(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string HexSignature(size_t signature) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zx", signature);
  return buf;
}

void AppendOperatorText(std::string* out, const OperatorProfile& node,
                        size_t indent) {
  out->append(2 * indent, ' ');
  *out += "-> " + node.op;
  if (!node.detail.empty()) *out += " " + node.detail;
  *out += "\n";
  out->append(2 * indent + 5, ' ');
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "rows: est=%.0f obs=%llu (q=%.2f)  in=%llu sel: est=%.3f "
                "obs=%.3f  batches=%llu\n",
                node.estimated_rows,
                static_cast<unsigned long long>(node.rows_out), node.q_error(),
                static_cast<unsigned long long>(node.rows_in),
                node.est_selectivity, node.obs_selectivity,
                static_cast<unsigned long long>(node.batches));
  *out += buf;
  out->append(2 * indent + 5, ' ');
  *out += "time: self=" + Seconds(node.self_virtual_s) +
          " cum=" + Seconds(node.cum_virtual_s) +
          " (wall self=" + Seconds(node.self_wall_s) +
          " cum=" + Seconds(node.cum_wall_s) + ")";
  if (node.arena_bytes > 0) {
    *out += "  arena=" + std::to_string(node.arena_bytes) + "B";
  }
  *out += "\n";
  for (const auto& child : node.children) {
    AppendOperatorText(out, *child, indent + 1);
  }
}

void AppendOperatorJson(std::string* out, const OperatorProfile& node) {
  *out += "{\"op\": " + Quote(node.op) + ", \"detail\": " + Quote(node.detail) +
          ", \"est_rows\": " + JsonDouble(node.estimated_rows) +
          ", \"rows_in\": " + std::to_string(node.rows_in) +
          ", \"rows_out\": " + std::to_string(node.rows_out) +
          ", \"batches\": " + std::to_string(node.batches) +
          ", \"est_selectivity\": " + JsonDouble(node.est_selectivity) +
          ", \"obs_selectivity\": " + JsonDouble(node.obs_selectivity) +
          ", \"cum_work\": " + JsonDouble(node.cum_work_units) +
          ", \"cum_io\": " + JsonDouble(node.cum_io_units) +
          ", \"self_work\": " + JsonDouble(node.self_work_units) +
          ", \"self_io\": " + JsonDouble(node.self_io_units) +
          ", \"cum_virtual_s\": " + JsonDouble(node.cum_virtual_s) +
          ", \"self_virtual_s\": " + JsonDouble(node.self_virtual_s) +
          ", \"cum_wall_s\": " + JsonDouble(node.cum_wall_s) +
          ", \"self_wall_s\": " + JsonDouble(node.self_wall_s) +
          ", \"arena_bytes\": " + std::to_string(node.arena_bytes) +
          ", \"children\": [";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i) *out += ", ";
    AppendOperatorJson(out, *node.children[i]);
  }
  *out += "]}";
}

std::shared_ptr<OperatorProfile> OperatorFromJson(const JsonValue& value) {
  if (!value.is_object()) return nullptr;
  auto node = std::make_shared<OperatorProfile>();
  auto str = [&](const char* key) -> std::string {
    const JsonValue* v = value.Get(key);
    return v != nullptr ? v->AsString() : std::string();
  };
  auto num = [&](const char* key, double fallback = 0.0) {
    const JsonValue* v = value.Get(key);
    return v != nullptr ? v->AsDouble(fallback) : fallback;
  };
  auto u64 = [&](const char* key) -> uint64_t {
    const JsonValue* v = value.Get(key);
    return v != nullptr ? v->AsU64(0) : 0;
  };
  node->op = str("op");
  node->detail = str("detail");
  node->estimated_rows = num("est_rows");
  node->rows_in = u64("rows_in");
  node->rows_out = u64("rows_out");
  node->batches = u64("batches");
  node->est_selectivity = num("est_selectivity", 1.0);
  node->obs_selectivity = num("obs_selectivity", 1.0);
  node->cum_work_units = num("cum_work");
  node->cum_io_units = num("cum_io");
  node->self_work_units = num("self_work");
  node->self_io_units = num("self_io");
  node->cum_virtual_s = num("cum_virtual_s");
  node->self_virtual_s = num("self_virtual_s");
  node->cum_wall_s = num("cum_wall_s");
  node->self_wall_s = num("self_wall_s");
  node->arena_bytes = u64("arena_bytes");
  if (const JsonValue* children = value.Get("children");
      children != nullptr && children->is_array()) {
    for (const JsonValue& c : children->array) {
      if (auto child = OperatorFromJson(c)) {
        node->children.push_back(std::move(child));
      }
    }
  }
  return node;
}

/// Mean and max over a ring's retained samples (0 when empty).
void RingStats(const TimeSeriesRing& ring, double* mean, double* max) {
  *mean = 0.0;
  *max = 0.0;
  if (ring.empty()) return;
  double sum = 0.0;
  for (size_t i = 0; i < ring.size(); ++i) {
    const double v = ring.at(i).value;
    sum += v;
    *max = std::max(*max, v);
  }
  *mean = sum / double(ring.size());
}

}  // namespace

std::string OperatorProfileText(const OperatorProfile& node, size_t indent) {
  std::string out;
  AppendOperatorText(&out, node, indent);
  return out;
}

std::string ProfileText(const QueryProfile& profile) {
  std::string out = "profile: query " + std::to_string(profile.query_id);
  if (!profile.sql.empty()) out += "  " + profile.sql;
  out += "\n";
  for (const FragmentProfile& f : profile.fragments) {
    out += "fragment " + std::to_string(f.fragment_index) + " @ " +
           f.server_id + "  (sig " + HexSignature(f.signature) +
           ", est " + Seconds(f.estimated_seconds) + ", obs " +
           Seconds(f.observed_seconds) + ")\n";
    if (f.root) AppendOperatorText(&out, *f.root, 1);
  }
  if (profile.merge) {
    out += "merge @ integrator  (" + Seconds(profile.merge_seconds) + ")\n";
    AppendOperatorText(&out, *profile.merge, 1);
  }
  return out;
}

std::string ProfileToJson(const QueryProfile& profile) {
  std::string out = "{\"query_id\": " + std::to_string(profile.query_id) +
                    ", \"sql\": " + Quote(profile.sql) +
                    ", \"merge_seconds\": " +
                    JsonDouble(profile.merge_seconds) +
                    ", \"fragments\": [";
  for (size_t i = 0; i < profile.fragments.size(); ++i) {
    const FragmentProfile& f = profile.fragments[i];
    if (i) out += ", ";
    out += "{\"server\": " + Quote(f.server_id) +
           ", \"index\": " + std::to_string(f.fragment_index) +
           ", \"signature\": " + std::to_string(f.signature) +
           ", \"estimated_s\": " + JsonDouble(f.estimated_seconds) +
           ", \"observed_s\": " + JsonDouble(f.observed_seconds) +
           ", \"root\": ";
    if (f.root) {
      AppendOperatorJson(&out, *f.root);
    } else {
      out += "null";
    }
    out += "}";
  }
  out += "], \"merge\": ";
  if (profile.merge) {
    AppendOperatorJson(&out, *profile.merge);
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

std::shared_ptr<QueryProfile> ProfileFromJsonValue(const JsonValue& value) {
  if (!value.is_object()) return nullptr;
  auto profile = std::make_shared<QueryProfile>();
  if (const JsonValue* v = value.Get("query_id")) {
    profile->query_id = v->AsU64(0);
  }
  if (const JsonValue* v = value.Get("sql")) profile->sql = v->AsString();
  if (const JsonValue* v = value.Get("merge_seconds")) {
    profile->merge_seconds = v->AsDouble(0.0);
  }
  if (const JsonValue* fragments = value.Get("fragments");
      fragments != nullptr && fragments->is_array()) {
    for (const JsonValue& f : fragments->array) {
      if (!f.is_object()) continue;
      FragmentProfile fp;
      if (const JsonValue* v = f.Get("server")) fp.server_id = v->AsString();
      if (const JsonValue* v = f.Get("index")) {
        fp.fragment_index = size_t(v->AsU64(0));
      }
      if (const JsonValue* v = f.Get("signature")) {
        fp.signature = size_t(v->AsU64(0));
      }
      if (const JsonValue* v = f.Get("estimated_s")) {
        fp.estimated_seconds = v->AsDouble(0.0);
      }
      if (const JsonValue* v = f.Get("observed_s")) {
        fp.observed_seconds = v->AsDouble(0.0);
      }
      if (const JsonValue* v = f.Get("root"); v != nullptr && !v->is_null()) {
        fp.root = OperatorFromJson(*v);
      }
      profile->fragments.push_back(std::move(fp));
    }
  }
  if (const JsonValue* v = value.Get("merge");
      v != nullptr && !v->is_null()) {
    profile->merge = OperatorFromJson(*v);
  }
  return profile;
}

Result<std::shared_ptr<QueryProfile>> ProfileFromJson(
    const std::string& text) {
  FEDCAL_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(text));
  auto profile = ProfileFromJsonValue(doc);
  if (profile == nullptr) {
    return Status::InvalidArgument("profile JSON is not an object");
  }
  return profile;
}

std::string AccuracyText(const FlightRecorder& recorder) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cost-model accuracy: %llu samples, %llu misses (q-error >= "
                "%.3g)\n",
                static_cast<unsigned long long>(
                    recorder.total_accuracy_samples()),
                static_cast<unsigned long long>(
                    recorder.total_estimate_misses()),
                recorder.config().estimate_miss_qerror);
  out += buf;
  const auto& cells = recorder.accuracy_by_server_op();
  if (cells.empty()) {
    out += "  (no profiled runs yet)\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf), "  %-8s %-14s %8s %8s %8s %8s  %s\n",
                "server", "operator", "samples", "mean-q", "max-q", "misses",
                "last est->obs");
  out += buf;
  for (const auto& [key, cell] : cells) {
    double mean_q = 0.0, max_q = 0.0;
    RingStats(cell.q_error, &mean_q, &max_q);
    std::snprintf(buf, sizeof(buf),
                  "  %-8s %-14s %8llu %8.2f %8.2f %8llu  %.0f->%.0f\n",
                  key.first.c_str(), key.second.c_str(),
                  static_cast<unsigned long long>(cell.samples), mean_q, max_q,
                  static_cast<unsigned long long>(cell.misses),
                  cell.last_estimated, cell.last_observed);
    out += buf;
  }
  const auto& templates = recorder.accuracy_by_template();
  if (!templates.empty()) {
    std::snprintf(buf, sizeof(buf), "  %-23s %8s %8s %8s %8s\n", "template",
                  "samples", "mean-q", "max-q", "misses");
    out += buf;
    for (const auto& [sig, cell] : templates) {
      double mean_q = 0.0, max_q = 0.0;
      RingStats(cell.q_error, &mean_q, &max_q);
      std::snprintf(buf, sizeof(buf), "  %-23s %8llu %8.2f %8.2f %8llu\n",
                    ("sig " + HexSignature(sig)).c_str(),
                    static_cast<unsigned long long>(cell.samples), mean_q,
                    max_q, static_cast<unsigned long long>(cell.misses));
      out += buf;
    }
  }
  return out;
}

}  // namespace fedcal::obs
