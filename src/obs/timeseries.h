#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/clock.h"

namespace fedcal::obs {

/// \brief One (virtual time, value) sample of a per-server signal.
struct TimePoint {
  SimTime t = 0.0;
  double value = 0.0;
};

/// \brief Fixed-capacity ring buffer of time-stamped samples.
///
/// The flight recorder keeps one ring per (server, metric); appends are
/// O(1) and memory never grows past the configured capacity, so the
/// recorder stays safe under the ROADMAP's heavy-traffic goal no matter
/// how long a federation runs.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Append(SimTime t, double value);

  size_t size() const { return buf_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return buf_.empty(); }
  /// Lifetime append count — exceeds size() once the ring has wrapped.
  uint64_t total_appended() const { return appended_; }

  /// i-th retained sample, 0 = oldest.
  const TimePoint& at(size_t i) const;
  const TimePoint& latest() const { return at(size() - 1); }

  /// Retained samples with t in [from, to], oldest first.
  std::vector<TimePoint> Range(SimTime from, SimTime to) const;

  void Clear();

 private:
  size_t capacity_;
  std::vector<TimePoint> buf_;  ///< grows to capacity_, then wraps
  size_t head_ = 0;             ///< index of the oldest sample once full
  uint64_t appended_ = 0;
};

/// \brief The per-server signals the flight recorder samples on every QCC
/// update. Values are doubles so one ring type serves all of them
/// (booleans are 0/1, breaker states 0/1/2).
enum class ServerMetric {
  kCalibrationFactor,      ///< CalibrationStore::ServerFactor
  kReliabilityMultiplier,  ///< ReliabilityTracker::CostMultiplier
  kAvailability,           ///< 1 = up, 0 = down (§3.3 daemons)
  kBreakerState,           ///< 0 closed, 1 half-open, 2 open
  kObservedRatio,          ///< observed/estimated cost of the last fragment
};

inline constexpr size_t kNumServerMetrics = 5;
const char* ServerMetricName(ServerMetric metric);

/// \brief Drift-detector tuning: raise an event when the calibration
/// factor moves more than `threshold_fraction` relative to the oldest
/// sample inside the trailing `window_seconds`.
struct DriftDetectorConfig {
  double threshold_fraction = 0.5;
  double window_seconds = 30.0;
  /// Minimum virtual-time gap between two events for the same server, so
  /// a sustained swing raises one event, not one per sample.
  double cooldown_seconds = 10.0;
};

/// \brief Typed event: a server's calibration factor moved sharply — the
/// signal that routing is about to shift (load spike, recovery, flap).
struct DriftEvent {
  std::string server_id;
  SimTime at = 0.0;
  double reference = 0.0;  ///< factor at the start of the window
  double current = 0.0;    ///< factor that triggered the event
  double change_fraction = 0.0;  ///< |current - reference| / reference
};

}  // namespace fedcal::obs
