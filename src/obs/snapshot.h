#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/timed_mutex.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"

namespace fedcal::obs {

/// \brief One server's row on the fedtop dashboard.
struct ServerPanel {
  std::string server_id;
  std::string grade = "healthy";  ///< HealthGradeName
  bool down = false;
  std::string breaker = "closed";
  double calibration_factor = 1.0;
  double reliability_multiplier = 1.0;
  size_t active_alerts = 0;
};

/// \brief The serving scheduler's panel: the executor pool's sched.*
/// metrics at one instant. `present` is false in sim mode (no scheduler
/// runs there) and the panel then renders nothing.
struct SchedulerPanel {
  bool present = false;
  uint64_t events_fired = 0;
  uint64_t jobs_completed = 0;
  double heap_depth = 0.0;
  HistogramSnapshot dispatch_lag;    ///< sched.dispatch_lag_s
  HistogramSnapshot exclusive_wait;  ///< sched.exclusive_wait_s
  HistogramSnapshot await_wait;      ///< sched.await_wait_s
  double workers_busy_s = 0.0;
  double workers_idle_s = 0.0;
  /// (busy_s, idle_s) per worker, indexed by worker number.
  std::vector<std::pair<double, double>> per_worker;

  /// Busy fraction of total worker wall time (0 when no time recorded).
  double utilization() const {
    const double total = workers_busy_s + workers_idle_s;
    return total <= 0.0 ? 0.0 : workers_busy_s / total;
  }
};

/// \brief One lock site's row on the contention panel.
struct LockSitePanel {
  std::string site;
  uint64_t acquisitions = 0;
  uint64_t contended = 0;
  double wait_total_s = 0.0;  ///< summed blocked time (contended only)
  double wait_p95_s = 0.0;
  double hold_p95_s = 0.0;

  double contention_rate() const {
    return acquisitions == 0 ? 0.0
                             : double(contended) / double(acquisitions);
  }
};

/// \brief One (server, operator-kind) row of the cost-model accuracy
/// panel — rolling cardinality q-error statistics from profiled runs.
struct AccuracyRow {
  std::string server_id;
  std::string op;
  uint64_t samples = 0;
  uint64_t misses = 0;  ///< samples past the estimate-miss q-error bar
  double mean_q_error = 0.0;
  double max_q_error = 0.0;
  double last_estimated = 0.0;
  double last_observed = 0.0;
};

/// \brief A self-contained, serializable picture of fleet health at one
/// instant: what `fedtop` renders and what CI archives as an artifact.
///
/// The snapshot is decoupled from the live engine so it can round-trip
/// through JSON — `fedtop saved.json` renders the exact same screen the
/// live run showed.
struct HealthSnapshot {
  SimTime at = 0.0;
  std::string fleet_grade = "healthy";
  uint64_t total_events = 0;
  uint64_t total_alerts_fired = 0;
  uint64_t total_alerts_resolved = 0;
  std::vector<ServerPanel> servers;   ///< sorted by server id
  std::vector<AlertRecord> alerts;    ///< recent tail, oldest first
  std::vector<HealthEvent> events;    ///< recent tail, oldest first
  /// Serving-mode extensions; absent (present=false / empty) in sim-mode
  /// snapshots, and omitted from the JSON form so pre-existing snapshot
  /// files and goldens are unchanged.
  SchedulerPanel sched;
  std::vector<LockSitePanel> locks;  ///< top sites by total wait
  /// Cost-model accuracy scoreboard; empty (and omitted from JSON) unless
  /// the run profiled queries, so profile-less snapshots are unchanged.
  std::vector<AccuracyRow> accuracy;
};

/// Assembles a snapshot from the live health engine + flight recorder +
/// event log. `server_ids` seeds the panel list so servers that have not
/// produced telemetry yet still appear (merged with every server the
/// engine or recorder knows about).
/// `metrics` non-null additionally fills the scheduler panel from the
/// sched.* metrics (serving mode); `include_locks` fills the contention
/// panel from the process-wide LockSiteRegistry (top `max_lock_sites` by
/// total wait). Both default off so sim-mode snapshots stay byte-stable.
HealthSnapshot BuildHealthSnapshot(const HealthEngine& health,
                                   const FlightRecorder& recorder,
                                   const EventLog& events, SimTime now,
                                   const std::vector<std::string>& server_ids =
                                       {},
                                   size_t max_alerts = 16,
                                   size_t max_events = 16,
                                   const MetricsRegistry* metrics = nullptr,
                                   bool include_locks = false,
                                   size_t max_lock_sites = 8);

/// The scheduler panel alone, from a registry's sched.* metrics.
SchedulerPanel BuildSchedulerPanel(const MetricsRegistry& metrics);

/// The contention panel alone: top `max_sites` lock sites by total wait.
std::vector<LockSitePanel> BuildLockPanels(size_t max_sites = 8);

/// Deterministic JSON form (stable ordering, FormatMetricValue doubles).
std::string HealthSnapshotToJson(const HealthSnapshot& snapshot);

/// Parses a snapshot produced by HealthSnapshotToJson.
Result<HealthSnapshot> HealthSnapshotFromJson(const std::string& json);

/// The single-screen fedtop dashboard: fleet banner, per-server health
/// table, active alerts, recent events — plus the scheduler and
/// contention panels when the snapshot carries them.
std::string FedtopText(const HealthSnapshot& snapshot);

/// The scheduler panel as text (shared by fedtop and the shell's \sched).
std::string SchedText(const SchedulerPanel& sched);

/// The contention panel as text (fedtop and the shell's \contention).
std::string ContentionText(const std::vector<LockSitePanel>& locks);

/// The accuracy panel as text (fedtop; the live-recorder variant for the
/// shell is AccuracyText in obs/profile_export.h).
std::string AccuracyPanelText(const std::vector<AccuracyRow>& rows);

}  // namespace fedcal::obs
