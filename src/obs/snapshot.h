#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"

namespace fedcal::obs {

/// \brief One server's row on the fedtop dashboard.
struct ServerPanel {
  std::string server_id;
  std::string grade = "healthy";  ///< HealthGradeName
  bool down = false;
  std::string breaker = "closed";
  double calibration_factor = 1.0;
  double reliability_multiplier = 1.0;
  size_t active_alerts = 0;
};

/// \brief A self-contained, serializable picture of fleet health at one
/// instant: what `fedtop` renders and what CI archives as an artifact.
///
/// The snapshot is decoupled from the live engine so it can round-trip
/// through JSON — `fedtop saved.json` renders the exact same screen the
/// live run showed.
struct HealthSnapshot {
  SimTime at = 0.0;
  std::string fleet_grade = "healthy";
  uint64_t total_events = 0;
  uint64_t total_alerts_fired = 0;
  uint64_t total_alerts_resolved = 0;
  std::vector<ServerPanel> servers;   ///< sorted by server id
  std::vector<AlertRecord> alerts;    ///< recent tail, oldest first
  std::vector<HealthEvent> events;    ///< recent tail, oldest first
};

/// Assembles a snapshot from the live health engine + flight recorder +
/// event log. `server_ids` seeds the panel list so servers that have not
/// produced telemetry yet still appear (merged with every server the
/// engine or recorder knows about).
HealthSnapshot BuildHealthSnapshot(const HealthEngine& health,
                                   const FlightRecorder& recorder,
                                   const EventLog& events, SimTime now,
                                   const std::vector<std::string>& server_ids =
                                       {},
                                   size_t max_alerts = 16,
                                   size_t max_events = 16);

/// Deterministic JSON form (stable ordering, FormatMetricValue doubles).
std::string HealthSnapshotToJson(const HealthSnapshot& snapshot);

/// Parses a snapshot produced by HealthSnapshotToJson.
Result<HealthSnapshot> HealthSnapshotFromJson(const std::string& json);

/// The single-screen fedtop dashboard: fleet banner, per-server health
/// table, active alerts, recent events.
std::string FedtopText(const HealthSnapshot& snapshot);

}  // namespace fedcal::obs
