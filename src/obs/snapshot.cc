#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "common/json.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace fedcal::obs {

namespace {

double LatestSeriesValue(const FlightRecorder& recorder,
                         const std::string& server_id, ServerMetric metric,
                         double fallback) {
  const TimeSeriesRing* ring = recorder.Series(server_id, metric);
  if (ring == nullptr || ring->empty()) return fallback;
  return ring->latest().value;
}

uint64_t CounterOr0(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

double GaugeOr0(const MetricsSnapshot& snap, const std::string& name) {
  auto it = snap.gauges.find(name);
  return it == snap.gauges.end() ? 0.0 : it->second;
}

}  // namespace

SchedulerPanel BuildSchedulerPanel(const MetricsRegistry& metrics) {
  // Read through a snapshot — registry lookups create metrics on first
  // use, and the panel must not mint sched.* entries in sim mode.
  const MetricsSnapshot snap = metrics.Snapshot();
  SchedulerPanel panel;
  auto it = snap.histograms.find("sched.dispatch_lag_s");
  if (it == snap.histograms.end()) return panel;  // not a serving run
  panel.present = true;
  panel.dispatch_lag = it->second;
  auto find_hist = [&snap](const std::string& name) {
    auto h = snap.histograms.find(name);
    return h == snap.histograms.end() ? HistogramSnapshot{} : h->second;
  };
  panel.exclusive_wait = find_hist("sched.exclusive_wait_s");
  panel.await_wait = find_hist("sched.await_wait_s");
  panel.events_fired = CounterOr0(snap, "sched.events_fired");
  panel.jobs_completed = CounterOr0(snap, "sched.jobs_completed");
  panel.heap_depth = GaugeOr0(snap, "sched.heap_depth");
  panel.workers_busy_s = GaugeOr0(snap, "sched.workers.busy_s");
  panel.workers_idle_s = GaugeOr0(snap, "sched.workers.idle_s");
  // Per-worker gauges are "sched.worker.<i>.busy_s" / ".idle_s".
  for (const auto& [name, value] : snap.gauges) {
    const std::string prefix = "sched.worker.";
    if (name.rfind(prefix, 0) != 0) continue;
    const size_t dot = name.find('.', prefix.size());
    if (dot == std::string::npos) continue;
    const int index = std::atoi(name.substr(prefix.size(),
                                            dot - prefix.size()).c_str());
    if (index < 0) continue;
    if (panel.per_worker.size() <= size_t(index)) {
      panel.per_worker.resize(size_t(index) + 1);
    }
    if (name.compare(dot, std::string::npos, ".busy_s") == 0) {
      panel.per_worker[size_t(index)].first = value;
    } else if (name.compare(dot, std::string::npos, ".idle_s") == 0) {
      panel.per_worker[size_t(index)].second = value;
    }
  }
  return panel;
}

std::vector<LockSitePanel> BuildLockPanels(size_t max_sites) {
  std::vector<LockSitePanel> panels;
  for (const LockSiteSnapshot& s : LockSiteRegistry::Instance().SnapshotAll()) {
    if (s.acquisitions == 0) continue;
    LockSitePanel p;
    p.site = s.site;
    p.acquisitions = s.acquisitions;
    p.contended = s.contended;
    p.wait_total_s = s.wait.sum;
    p.wait_p95_s = s.wait.p95;
    p.hold_p95_s = s.hold.p95;
    panels.push_back(std::move(p));
  }
  std::sort(panels.begin(), panels.end(),
            [](const LockSitePanel& a, const LockSitePanel& b) {
              if (a.wait_total_s != b.wait_total_s) {
                return a.wait_total_s > b.wait_total_s;
              }
              return a.site < b.site;
            });
  if (max_sites != 0 && panels.size() > max_sites) panels.resize(max_sites);
  return panels;
}

HealthSnapshot BuildHealthSnapshot(const HealthEngine& health,
                                   const FlightRecorder& recorder,
                                   const EventLog& events, SimTime now,
                                   const std::vector<std::string>& server_ids,
                                   size_t max_alerts, size_t max_events,
                                   const MetricsRegistry* metrics,
                                   bool include_locks, size_t max_lock_sites) {
  HealthSnapshot snap;
  snap.at = now;
  snap.fleet_grade = HealthGradeName(health.FleetGrade(now));
  snap.total_events = events.total_emitted();
  snap.total_alerts_fired = health.total_fired();
  snap.total_alerts_resolved = health.total_resolved();

  std::set<std::string> ids(server_ids.begin(), server_ids.end());
  for (const auto& [sid, state] : health.servers()) {
    (void)state;
    ids.insert(sid);
  }
  for (const std::string& sid : recorder.SampledServers()) ids.insert(sid);

  for (const std::string& sid : ids) {
    ServerPanel panel;
    panel.server_id = sid;
    panel.grade = HealthGradeName(health.ServerGrade(sid, now));
    auto it = health.servers().find(sid);
    if (it != health.servers().end()) {
      panel.down = it->second.down;
      panel.breaker = it->second.breaker;
    }
    panel.calibration_factor = LatestSeriesValue(
        recorder, sid, ServerMetric::kCalibrationFactor, 1.0);
    panel.reliability_multiplier = LatestSeriesValue(
        recorder, sid, ServerMetric::kReliabilityMultiplier, 1.0);
    for (const AlertRecord& a : health.alerts()) {
      if (a.active() && a.server_id == sid) panel.active_alerts++;
    }
    snap.servers.push_back(std::move(panel));
  }

  const auto& alerts = health.alerts();
  size_t alert_start =
      max_alerts != 0 && alerts.size() > max_alerts ? alerts.size() - max_alerts
                                                    : 0;
  for (size_t i = alert_start; i < alerts.size(); ++i) {
    snap.alerts.push_back(alerts[i]);
  }

  for (const HealthEvent* e : events.Tail(max_events)) {
    snap.events.push_back(*e);
  }
  if (metrics != nullptr) snap.sched = BuildSchedulerPanel(*metrics);
  if (include_locks) snap.locks = BuildLockPanels(max_lock_sites);

  // Accuracy scoreboard: empty unless the run profiled queries.
  for (const auto& [key, cell] : recorder.accuracy_by_server_op()) {
    AccuracyRow row;
    row.server_id = key.first;
    row.op = key.second;
    row.samples = cell.samples;
    row.misses = cell.misses;
    double sum = 0.0;
    for (size_t i = 0; i < cell.q_error.size(); ++i) {
      const double v = cell.q_error.at(i).value;
      sum += v;
      row.max_q_error = std::max(row.max_q_error, v);
    }
    if (!cell.q_error.empty()) {
      row.mean_q_error = sum / double(cell.q_error.size());
    }
    row.last_estimated = cell.last_estimated;
    row.last_observed = cell.last_observed;
    snap.accuracy.push_back(std::move(row));
  }
  return snap;
}

namespace {

/// The histogram fields the panels render; bucket_total is a
/// snapshot-consistency probe, not part of the serialized form.
std::string HistToJson(const HistogramSnapshot& h) {
  return "{\"count\": " + std::to_string(h.count) +
         ", \"sum\": " + FormatMetricValue(h.sum) +
         ", \"min\": " + FormatMetricValue(h.min) +
         ", \"max\": " + FormatMetricValue(h.max) +
         ", \"p50\": " + FormatMetricValue(h.p50) +
         ", \"p95\": " + FormatMetricValue(h.p95) +
         ", \"p99\": " + FormatMetricValue(h.p99) + "}";
}

HistogramSnapshot HistFromJson(const JsonValue& v) {
  HistogramSnapshot h;
  if (const JsonValue* f = v.Get("count")) h.count = f->AsU64();
  if (const JsonValue* f = v.Get("sum")) h.sum = f->AsDouble();
  if (const JsonValue* f = v.Get("min")) h.min = f->AsDouble();
  if (const JsonValue* f = v.Get("max")) h.max = f->AsDouble();
  if (const JsonValue* f = v.Get("p50")) h.p50 = f->AsDouble();
  if (const JsonValue* f = v.Get("p95")) h.p95 = f->AsDouble();
  if (const JsonValue* f = v.Get("p99")) h.p99 = f->AsDouble();
  return h;
}

}  // namespace

std::string HealthSnapshotToJson(const HealthSnapshot& snapshot) {
  std::string out = "{\n";
  out += "\"at\": " + FormatMetricValue(snapshot.at) + ",\n";
  out += "\"fleet_grade\": " + JsonQuote(snapshot.fleet_grade) + ",\n";
  out += "\"total_events\": " + std::to_string(snapshot.total_events) + ",\n";
  out += "\"total_alerts_fired\": " +
         std::to_string(snapshot.total_alerts_fired) + ",\n";
  out += "\"total_alerts_resolved\": " +
         std::to_string(snapshot.total_alerts_resolved) + ",\n";
  out += "\"servers\": [";
  for (size_t i = 0; i < snapshot.servers.size(); ++i) {
    const ServerPanel& p = snapshot.servers[i];
    out += i ? ",\n  " : "\n  ";
    out += "{\"server\": " + JsonQuote(p.server_id) +
           ", \"grade\": " + JsonQuote(p.grade) +
           ", \"down\": " + (p.down ? "true" : "false") +
           ", \"breaker\": " + JsonQuote(p.breaker) +
           ", \"calibration_factor\": " +
           FormatMetricValue(p.calibration_factor) +
           ", \"reliability_multiplier\": " +
           FormatMetricValue(p.reliability_multiplier) +
           ", \"active_alerts\": " + std::to_string(p.active_alerts) + "}";
  }
  out += snapshot.servers.empty() ? "],\n" : "\n],\n";
  out += "\"alerts\": [";
  for (size_t i = 0; i < snapshot.alerts.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += AlertToJson(snapshot.alerts[i]);
  }
  out += snapshot.alerts.empty() ? "],\n" : "\n],\n";
  out += "\"events\": [";
  for (size_t i = 0; i < snapshot.events.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += EventToJson(snapshot.events[i]);
  }
  // The serving-only panels (and the accuracy scoreboard) are emitted
  // only when populated so sim-mode snapshot files (and their goldens)
  // are byte-identical to before.
  const bool tail = snapshot.sched.present || !snapshot.locks.empty() ||
                    !snapshot.accuracy.empty();
  out += snapshot.events.empty() ? "]" : "\n]";
  out += tail ? ",\n" : "\n";
  if (snapshot.sched.present) {
    const SchedulerPanel& s = snapshot.sched;
    out += "\"sched\": {\n";
    out += "  \"events_fired\": " + std::to_string(s.events_fired) + ",\n";
    out += "  \"jobs_completed\": " + std::to_string(s.jobs_completed) +
           ",\n";
    out += "  \"heap_depth\": " + FormatMetricValue(s.heap_depth) + ",\n";
    out += "  \"dispatch_lag\": " + HistToJson(s.dispatch_lag) + ",\n";
    out += "  \"exclusive_wait\": " + HistToJson(s.exclusive_wait) + ",\n";
    out += "  \"await_wait\": " + HistToJson(s.await_wait) + ",\n";
    out += "  \"workers_busy_s\": " + FormatMetricValue(s.workers_busy_s) +
           ",\n";
    out += "  \"workers_idle_s\": " + FormatMetricValue(s.workers_idle_s) +
           ",\n";
    out += "  \"per_worker\": [";
    for (size_t i = 0; i < s.per_worker.size(); ++i) {
      out += i ? ", " : "";
      out += "[" + FormatMetricValue(s.per_worker[i].first) + ", " +
             FormatMetricValue(s.per_worker[i].second) + "]";
    }
    out += "]\n}";
    out += snapshot.locks.empty() && snapshot.accuracy.empty() ? "\n" : ",\n";
  }
  if (!snapshot.locks.empty()) {
    out += "\"locks\": [";
    for (size_t i = 0; i < snapshot.locks.size(); ++i) {
      const LockSitePanel& p = snapshot.locks[i];
      out += i ? ",\n  " : "\n  ";
      out += "{\"site\": " + JsonQuote(p.site) +
             ", \"acquisitions\": " + std::to_string(p.acquisitions) +
             ", \"contended\": " + std::to_string(p.contended) +
             ", \"wait_total_s\": " + FormatMetricValue(p.wait_total_s) +
             ", \"wait_p95_s\": " + FormatMetricValue(p.wait_p95_s) +
             ", \"hold_p95_s\": " + FormatMetricValue(p.hold_p95_s) + "}";
    }
    out += snapshot.accuracy.empty() ? "\n]\n" : "\n],\n";
  }
  if (!snapshot.accuracy.empty()) {
    out += "\"accuracy\": [";
    for (size_t i = 0; i < snapshot.accuracy.size(); ++i) {
      const AccuracyRow& r = snapshot.accuracy[i];
      out += i ? ",\n  " : "\n  ";
      out += "{\"server\": " + JsonQuote(r.server_id) +
             ", \"op\": " + JsonQuote(r.op) +
             ", \"samples\": " + std::to_string(r.samples) +
             ", \"misses\": " + std::to_string(r.misses) +
             ", \"mean_q_error\": " + FormatMetricValue(r.mean_q_error) +
             ", \"max_q_error\": " + FormatMetricValue(r.max_q_error) +
             ", \"last_estimated\": " + FormatMetricValue(r.last_estimated) +
             ", \"last_observed\": " + FormatMetricValue(r.last_observed) +
             "}";
    }
    out += "\n]\n";
  }
  out += "}\n";
  return out;
}

namespace {

AlertRecord AlertFromJson(const JsonValue& v) {
  AlertRecord a;
  if (const JsonValue* f = v.Get("id")) a.id = f->AsU64();
  if (const JsonValue* f = v.Get("rule")) a.rule = f->AsString();
  if (const JsonValue* f = v.Get("severity")) {
    EventSeverityFromName(f->AsString(), &a.severity);
  }
  if (const JsonValue* f = v.Get("server")) a.server_id = f->AsString();
  if (const JsonValue* f = v.Get("fired_at")) a.fired_at = f->AsDouble();
  if (const JsonValue* f = v.Get("resolved_at")) {
    a.resolved_at = f->AsDouble(-1.0);
  }
  if (const JsonValue* f = v.Get("value")) a.value = f->AsDouble();
  if (const JsonValue* f = v.Get("threshold")) a.threshold = f->AsDouble();
  if (const JsonValue* f = v.Get("message")) a.message = f->AsString();
  if (const JsonValue* f = v.Get("event_seqs")) {
    for (const JsonValue& e : f->array) a.event_seqs.push_back(e.AsU64());
  }
  if (const JsonValue* f = v.Get("decision_query_ids")) {
    for (const JsonValue& e : f->array) {
      a.decision_query_ids.push_back(e.AsU64());
    }
  }
  return a;
}

HealthEvent EventFromJson(const JsonValue& v) {
  HealthEvent e;
  if (const JsonValue* f = v.Get("seq")) e.seq = f->AsU64();
  if (const JsonValue* f = v.Get("at")) e.at = f->AsDouble();
  if (const JsonValue* f = v.Get("type")) {
    EventTypeFromName(f->AsString(), &e.type);
  }
  if (const JsonValue* f = v.Get("severity")) {
    EventSeverityFromName(f->AsString(), &e.severity);
  }
  if (const JsonValue* f = v.Get("server")) e.server_id = f->AsString();
  if (const JsonValue* f = v.Get("query_id")) e.query_id = f->AsU64();
  if (const JsonValue* f = v.Get("span_id")) e.span_id = f->AsU64();
  if (const JsonValue* f = v.Get("message")) e.message = f->AsString();
  return e;
}

}  // namespace

Result<HealthSnapshot> HealthSnapshotFromJson(const std::string& json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("health snapshot: root is not an object");
  }
  HealthSnapshot snap;
  if (const JsonValue* f = root.Get("at")) snap.at = f->AsDouble();
  if (const JsonValue* f = root.Get("fleet_grade")) {
    snap.fleet_grade = f->AsString();
  }
  if (const JsonValue* f = root.Get("total_events")) {
    snap.total_events = f->AsU64();
  }
  if (const JsonValue* f = root.Get("total_alerts_fired")) {
    snap.total_alerts_fired = f->AsU64();
  }
  if (const JsonValue* f = root.Get("total_alerts_resolved")) {
    snap.total_alerts_resolved = f->AsU64();
  }
  if (const JsonValue* f = root.Get("servers")) {
    for (const JsonValue& v : f->array) {
      ServerPanel p;
      if (const JsonValue* g = v.Get("server")) p.server_id = g->AsString();
      if (const JsonValue* g = v.Get("grade")) p.grade = g->AsString();
      if (const JsonValue* g = v.Get("down")) p.down = g->AsBool();
      if (const JsonValue* g = v.Get("breaker")) p.breaker = g->AsString();
      if (const JsonValue* g = v.Get("calibration_factor")) {
        p.calibration_factor = g->AsDouble(1.0);
      }
      if (const JsonValue* g = v.Get("reliability_multiplier")) {
        p.reliability_multiplier = g->AsDouble(1.0);
      }
      if (const JsonValue* g = v.Get("active_alerts")) {
        p.active_alerts = g->AsU64();
      }
      snap.servers.push_back(std::move(p));
    }
  }
  if (const JsonValue* f = root.Get("alerts")) {
    for (const JsonValue& v : f->array) snap.alerts.push_back(AlertFromJson(v));
  }
  if (const JsonValue* f = root.Get("events")) {
    for (const JsonValue& v : f->array) snap.events.push_back(EventFromJson(v));
  }
  if (const JsonValue* f = root.Get("sched")) {
    SchedulerPanel& s = snap.sched;
    s.present = true;
    if (const JsonValue* g = f->Get("events_fired")) {
      s.events_fired = g->AsU64();
    }
    if (const JsonValue* g = f->Get("jobs_completed")) {
      s.jobs_completed = g->AsU64();
    }
    if (const JsonValue* g = f->Get("heap_depth")) {
      s.heap_depth = g->AsDouble();
    }
    if (const JsonValue* g = f->Get("dispatch_lag")) {
      s.dispatch_lag = HistFromJson(*g);
    }
    if (const JsonValue* g = f->Get("exclusive_wait")) {
      s.exclusive_wait = HistFromJson(*g);
    }
    if (const JsonValue* g = f->Get("await_wait")) {
      s.await_wait = HistFromJson(*g);
    }
    if (const JsonValue* g = f->Get("workers_busy_s")) {
      s.workers_busy_s = g->AsDouble();
    }
    if (const JsonValue* g = f->Get("workers_idle_s")) {
      s.workers_idle_s = g->AsDouble();
    }
    if (const JsonValue* g = f->Get("per_worker")) {
      for (const JsonValue& w : g->array) {
        std::pair<double, double> busy_idle{0.0, 0.0};
        if (w.array.size() >= 2) {
          busy_idle.first = w.array[0].AsDouble();
          busy_idle.second = w.array[1].AsDouble();
        }
        s.per_worker.push_back(busy_idle);
      }
    }
  }
  if (const JsonValue* f = root.Get("accuracy")) {
    for (const JsonValue& v : f->array) {
      AccuracyRow r;
      if (const JsonValue* g = v.Get("server")) r.server_id = g->AsString();
      if (const JsonValue* g = v.Get("op")) r.op = g->AsString();
      if (const JsonValue* g = v.Get("samples")) r.samples = g->AsU64();
      if (const JsonValue* g = v.Get("misses")) r.misses = g->AsU64();
      if (const JsonValue* g = v.Get("mean_q_error")) {
        r.mean_q_error = g->AsDouble();
      }
      if (const JsonValue* g = v.Get("max_q_error")) {
        r.max_q_error = g->AsDouble();
      }
      if (const JsonValue* g = v.Get("last_estimated")) {
        r.last_estimated = g->AsDouble();
      }
      if (const JsonValue* g = v.Get("last_observed")) {
        r.last_observed = g->AsDouble();
      }
      snap.accuracy.push_back(std::move(r));
    }
  }
  if (const JsonValue* f = root.Get("locks")) {
    for (const JsonValue& v : f->array) {
      LockSitePanel p;
      if (const JsonValue* g = v.Get("site")) p.site = g->AsString();
      if (const JsonValue* g = v.Get("acquisitions")) {
        p.acquisitions = g->AsU64();
      }
      if (const JsonValue* g = v.Get("contended")) p.contended = g->AsU64();
      if (const JsonValue* g = v.Get("wait_total_s")) {
        p.wait_total_s = g->AsDouble();
      }
      if (const JsonValue* g = v.Get("wait_p95_s")) {
        p.wait_p95_s = g->AsDouble();
      }
      if (const JsonValue* g = v.Get("hold_p95_s")) {
        p.hold_p95_s = g->AsDouble();
      }
      snap.locks.push_back(std::move(p));
    }
  }
  return snap;
}

std::string FedtopText(const HealthSnapshot& snapshot) {
  std::string out;
  char line[224];
  std::snprintf(line, sizeof(line),
                "fedtop — federation health at t=%.3fs   fleet: %s\n",
                snapshot.at, snapshot.fleet_grade.c_str());
  out += line;
  size_t active = 0;
  for (const AlertRecord& a : snapshot.alerts) {
    if (a.active()) active++;
  }
  std::snprintf(line, sizeof(line),
                "alerts: %zu active (%llu fired / %llu resolved lifetime)   "
                "events: %llu\n",
                active,
                static_cast<unsigned long long>(snapshot.total_alerts_fired),
                static_cast<unsigned long long>(
                    snapshot.total_alerts_resolved),
                static_cast<unsigned long long>(snapshot.total_events));
  out += line;
  out += "\n";
  out +=
      "  server  grade     avail  breaker    calib   reliab  alerts\n"
      "  ------  --------  -----  ---------  ------  ------  ------\n";
  for (const ServerPanel& p : snapshot.servers) {
    std::snprintf(line, sizeof(line),
                  "  %-6s  %-8s  %-5s  %-9s  %6.3f  x%5.2f  %6zu\n",
                  p.server_id.c_str(), p.grade.c_str(),
                  p.down ? "DOWN" : "up", p.breaker.c_str(),
                  p.calibration_factor, p.reliability_multiplier,
                  p.active_alerts);
    out += line;
  }
  if (snapshot.servers.empty()) out += "  (no servers)\n";

  out += "\nactive alerts:\n";
  bool any_active = false;
  for (const AlertRecord& a : snapshot.alerts) {
    if (!a.active()) continue;
    any_active = true;
    std::snprintf(line, sizeof(line), "  [%-5s] %s since t=%.3f: ",
                  EventSeverityName(a.severity), a.rule.c_str(), a.fired_at);
    out += line;
    out += a.message + "\n";
  }
  if (!any_active) out += "  (none)\n";

  out += "\nrecent events:\n";
  if (snapshot.events.empty()) {
    out += "  (none)\n";
  }
  for (const HealthEvent& e : snapshot.events) {
    std::snprintf(line, sizeof(line), "  #%-5llu t=%9.3f %-5s %-18s %-4s ",
                  static_cast<unsigned long long>(e.seq), e.at,
                  EventSeverityName(e.severity), EventTypeName(e.type),
                  e.server_id.empty() ? "-" : e.server_id.c_str());
    out += line;
    out += e.message + "\n";
  }
  if (snapshot.sched.present) {
    out += "\n" + SchedText(snapshot.sched);
  }
  if (!snapshot.locks.empty()) {
    out += "\n" + ContentionText(snapshot.locks);
  }
  if (!snapshot.accuracy.empty()) {
    out += "\n" + AccuracyPanelText(snapshot.accuracy);
  }
  return out;
}

namespace {

/// Compact duration for the panel tables: "840ns", "12.4us", "3.1ms",
/// "2.50s". Keeps columns readable across the nanosecond-to-second span
/// these histograms cover.
std::string FormatDur(double seconds) {
  char buf[32];
  const double a = seconds < 0 ? -seconds : seconds;
  if (a < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  } else if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

void AppendHistRow(const char* label, const HistogramSnapshot& h,
                   std::string* out) {
  char line[224];
  std::snprintf(line, sizeof(line),
                "  %-14s n=%-8llu mean=%-8s p50=%-8s p95=%-8s max=%s\n",
                label, static_cast<unsigned long long>(h.count),
                FormatDur(h.mean()).c_str(), FormatDur(h.p50).c_str(),
                FormatDur(h.p95).c_str(), FormatDur(h.max).c_str());
  *out += line;
}

}  // namespace

std::string SchedText(const SchedulerPanel& sched) {
  std::string out = "scheduler:\n";
  if (!sched.present) {
    out += "  (serving mode only — no scheduler in sim runs)\n";
    return out;
  }
  char line[224];
  std::snprintf(line, sizeof(line),
                "  events fired: %llu   jobs completed: %llu   "
                "heap depth: %.0f\n",
                static_cast<unsigned long long>(sched.events_fired),
                static_cast<unsigned long long>(sched.jobs_completed),
                sched.heap_depth);
  out += line;
  AppendHistRow("dispatch lag", sched.dispatch_lag, &out);
  AppendHistRow("exclusive wait", sched.exclusive_wait, &out);
  AppendHistRow("await wait", sched.await_wait, &out);
  std::snprintf(line, sizeof(line),
                "  workers: %zu   busy %s   idle %s   utilization %.1f%%\n",
                sched.per_worker.size(),
                FormatDur(sched.workers_busy_s).c_str(),
                FormatDur(sched.workers_idle_s).c_str(),
                sched.utilization() * 100.0);
  out += line;
  for (size_t i = 0; i < sched.per_worker.size(); ++i) {
    std::snprintf(line, sizeof(line), "    worker %-2zu busy %-8s idle %s\n",
                  i, FormatDur(sched.per_worker[i].first).c_str(),
                  FormatDur(sched.per_worker[i].second).c_str());
    out += line;
  }
  return out;
}

std::string ContentionText(const std::vector<LockSitePanel>& locks) {
  std::string out = "lock contention (top sites by total wait):\n";
  if (locks.empty()) {
    out += "  (no lock activity recorded)\n";
    return out;
  }
  out +=
      "  site                      acq        cont    rate    wait_tot  "
      "wait_p95  hold_p95\n";
  char line[224];
  for (const LockSitePanel& p : locks) {
    std::snprintf(line, sizeof(line),
                  "  %-24s  %-9llu  %-6llu  %5.2f%%  %-8s  %-8s  %s\n",
                  p.site.c_str(),
                  static_cast<unsigned long long>(p.acquisitions),
                  static_cast<unsigned long long>(p.contended),
                  p.contention_rate() * 100.0,
                  FormatDur(p.wait_total_s).c_str(),
                  FormatDur(p.wait_p95_s).c_str(),
                  FormatDur(p.hold_p95_s).c_str());
    out += line;
  }
  return out;
}

std::string AccuracyPanelText(const std::vector<AccuracyRow>& rows) {
  std::string out = "cost-model accuracy (cardinality q-error):\n";
  if (rows.empty()) {
    out += "  (no profiled runs)\n";
    return out;
  }
  out +=
      "  server  operator        samples  mean-q   max-q   misses  "
      "last est->obs\n";
  char line[224];
  for (const AccuracyRow& r : rows) {
    std::snprintf(line, sizeof(line),
                  "  %-6s  %-14s  %-7llu  %-7.2f  %-6.2f  %-6llu  %.0f->%.0f\n",
                  r.server_id.c_str(), r.op.c_str(),
                  static_cast<unsigned long long>(r.samples), r.mean_q_error,
                  r.max_q_error, static_cast<unsigned long long>(r.misses),
                  r.last_estimated, r.last_observed);
    out += line;
  }
  return out;
}

}  // namespace fedcal::obs
