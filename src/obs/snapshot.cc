#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/json.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace fedcal::obs {

namespace {

double LatestSeriesValue(const FlightRecorder& recorder,
                         const std::string& server_id, ServerMetric metric,
                         double fallback) {
  const TimeSeriesRing* ring = recorder.Series(server_id, metric);
  if (ring == nullptr || ring->empty()) return fallback;
  return ring->latest().value;
}

}  // namespace

HealthSnapshot BuildHealthSnapshot(const HealthEngine& health,
                                   const FlightRecorder& recorder,
                                   const EventLog& events, SimTime now,
                                   const std::vector<std::string>& server_ids,
                                   size_t max_alerts, size_t max_events) {
  HealthSnapshot snap;
  snap.at = now;
  snap.fleet_grade = HealthGradeName(health.FleetGrade(now));
  snap.total_events = events.total_emitted();
  snap.total_alerts_fired = health.total_fired();
  snap.total_alerts_resolved = health.total_resolved();

  std::set<std::string> ids(server_ids.begin(), server_ids.end());
  for (const auto& [sid, state] : health.servers()) {
    (void)state;
    ids.insert(sid);
  }
  for (const std::string& sid : recorder.SampledServers()) ids.insert(sid);

  for (const std::string& sid : ids) {
    ServerPanel panel;
    panel.server_id = sid;
    panel.grade = HealthGradeName(health.ServerGrade(sid, now));
    auto it = health.servers().find(sid);
    if (it != health.servers().end()) {
      panel.down = it->second.down;
      panel.breaker = it->second.breaker;
    }
    panel.calibration_factor = LatestSeriesValue(
        recorder, sid, ServerMetric::kCalibrationFactor, 1.0);
    panel.reliability_multiplier = LatestSeriesValue(
        recorder, sid, ServerMetric::kReliabilityMultiplier, 1.0);
    for (const AlertRecord& a : health.alerts()) {
      if (a.active() && a.server_id == sid) panel.active_alerts++;
    }
    snap.servers.push_back(std::move(panel));
  }

  const auto& alerts = health.alerts();
  size_t alert_start =
      max_alerts != 0 && alerts.size() > max_alerts ? alerts.size() - max_alerts
                                                    : 0;
  for (size_t i = alert_start; i < alerts.size(); ++i) {
    snap.alerts.push_back(alerts[i]);
  }

  for (const HealthEvent* e : events.Tail(max_events)) {
    snap.events.push_back(*e);
  }
  return snap;
}

std::string HealthSnapshotToJson(const HealthSnapshot& snapshot) {
  std::string out = "{\n";
  out += "\"at\": " + FormatMetricValue(snapshot.at) + ",\n";
  out += "\"fleet_grade\": " + JsonQuote(snapshot.fleet_grade) + ",\n";
  out += "\"total_events\": " + std::to_string(snapshot.total_events) + ",\n";
  out += "\"total_alerts_fired\": " +
         std::to_string(snapshot.total_alerts_fired) + ",\n";
  out += "\"total_alerts_resolved\": " +
         std::to_string(snapshot.total_alerts_resolved) + ",\n";
  out += "\"servers\": [";
  for (size_t i = 0; i < snapshot.servers.size(); ++i) {
    const ServerPanel& p = snapshot.servers[i];
    out += i ? ",\n  " : "\n  ";
    out += "{\"server\": " + JsonQuote(p.server_id) +
           ", \"grade\": " + JsonQuote(p.grade) +
           ", \"down\": " + (p.down ? "true" : "false") +
           ", \"breaker\": " + JsonQuote(p.breaker) +
           ", \"calibration_factor\": " +
           FormatMetricValue(p.calibration_factor) +
           ", \"reliability_multiplier\": " +
           FormatMetricValue(p.reliability_multiplier) +
           ", \"active_alerts\": " + std::to_string(p.active_alerts) + "}";
  }
  out += snapshot.servers.empty() ? "],\n" : "\n],\n";
  out += "\"alerts\": [";
  for (size_t i = 0; i < snapshot.alerts.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += AlertToJson(snapshot.alerts[i]);
  }
  out += snapshot.alerts.empty() ? "],\n" : "\n],\n";
  out += "\"events\": [";
  for (size_t i = 0; i < snapshot.events.size(); ++i) {
    out += i ? ",\n  " : "\n  ";
    out += EventToJson(snapshot.events[i]);
  }
  out += snapshot.events.empty() ? "]\n" : "\n]\n";
  out += "}\n";
  return out;
}

namespace {

AlertRecord AlertFromJson(const JsonValue& v) {
  AlertRecord a;
  if (const JsonValue* f = v.Get("id")) a.id = f->AsU64();
  if (const JsonValue* f = v.Get("rule")) a.rule = f->AsString();
  if (const JsonValue* f = v.Get("severity")) {
    EventSeverityFromName(f->AsString(), &a.severity);
  }
  if (const JsonValue* f = v.Get("server")) a.server_id = f->AsString();
  if (const JsonValue* f = v.Get("fired_at")) a.fired_at = f->AsDouble();
  if (const JsonValue* f = v.Get("resolved_at")) {
    a.resolved_at = f->AsDouble(-1.0);
  }
  if (const JsonValue* f = v.Get("value")) a.value = f->AsDouble();
  if (const JsonValue* f = v.Get("threshold")) a.threshold = f->AsDouble();
  if (const JsonValue* f = v.Get("message")) a.message = f->AsString();
  if (const JsonValue* f = v.Get("event_seqs")) {
    for (const JsonValue& e : f->array) a.event_seqs.push_back(e.AsU64());
  }
  if (const JsonValue* f = v.Get("decision_query_ids")) {
    for (const JsonValue& e : f->array) {
      a.decision_query_ids.push_back(e.AsU64());
    }
  }
  return a;
}

HealthEvent EventFromJson(const JsonValue& v) {
  HealthEvent e;
  if (const JsonValue* f = v.Get("seq")) e.seq = f->AsU64();
  if (const JsonValue* f = v.Get("at")) e.at = f->AsDouble();
  if (const JsonValue* f = v.Get("type")) {
    EventTypeFromName(f->AsString(), &e.type);
  }
  if (const JsonValue* f = v.Get("severity")) {
    EventSeverityFromName(f->AsString(), &e.severity);
  }
  if (const JsonValue* f = v.Get("server")) e.server_id = f->AsString();
  if (const JsonValue* f = v.Get("query_id")) e.query_id = f->AsU64();
  if (const JsonValue* f = v.Get("span_id")) e.span_id = f->AsU64();
  if (const JsonValue* f = v.Get("message")) e.message = f->AsString();
  return e;
}

}  // namespace

Result<HealthSnapshot> HealthSnapshotFromJson(const std::string& json) {
  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("health snapshot: root is not an object");
  }
  HealthSnapshot snap;
  if (const JsonValue* f = root.Get("at")) snap.at = f->AsDouble();
  if (const JsonValue* f = root.Get("fleet_grade")) {
    snap.fleet_grade = f->AsString();
  }
  if (const JsonValue* f = root.Get("total_events")) {
    snap.total_events = f->AsU64();
  }
  if (const JsonValue* f = root.Get("total_alerts_fired")) {
    snap.total_alerts_fired = f->AsU64();
  }
  if (const JsonValue* f = root.Get("total_alerts_resolved")) {
    snap.total_alerts_resolved = f->AsU64();
  }
  if (const JsonValue* f = root.Get("servers")) {
    for (const JsonValue& v : f->array) {
      ServerPanel p;
      if (const JsonValue* g = v.Get("server")) p.server_id = g->AsString();
      if (const JsonValue* g = v.Get("grade")) p.grade = g->AsString();
      if (const JsonValue* g = v.Get("down")) p.down = g->AsBool();
      if (const JsonValue* g = v.Get("breaker")) p.breaker = g->AsString();
      if (const JsonValue* g = v.Get("calibration_factor")) {
        p.calibration_factor = g->AsDouble(1.0);
      }
      if (const JsonValue* g = v.Get("reliability_multiplier")) {
        p.reliability_multiplier = g->AsDouble(1.0);
      }
      if (const JsonValue* g = v.Get("active_alerts")) {
        p.active_alerts = g->AsU64();
      }
      snap.servers.push_back(std::move(p));
    }
  }
  if (const JsonValue* f = root.Get("alerts")) {
    for (const JsonValue& v : f->array) snap.alerts.push_back(AlertFromJson(v));
  }
  if (const JsonValue* f = root.Get("events")) {
    for (const JsonValue& v : f->array) snap.events.push_back(EventFromJson(v));
  }
  return snap;
}

std::string FedtopText(const HealthSnapshot& snapshot) {
  std::string out;
  char line[224];
  std::snprintf(line, sizeof(line),
                "fedtop — federation health at t=%.3fs   fleet: %s\n",
                snapshot.at, snapshot.fleet_grade.c_str());
  out += line;
  size_t active = 0;
  for (const AlertRecord& a : snapshot.alerts) {
    if (a.active()) active++;
  }
  std::snprintf(line, sizeof(line),
                "alerts: %zu active (%llu fired / %llu resolved lifetime)   "
                "events: %llu\n",
                active,
                static_cast<unsigned long long>(snapshot.total_alerts_fired),
                static_cast<unsigned long long>(
                    snapshot.total_alerts_resolved),
                static_cast<unsigned long long>(snapshot.total_events));
  out += line;
  out += "\n";
  out +=
      "  server  grade     avail  breaker    calib   reliab  alerts\n"
      "  ------  --------  -----  ---------  ------  ------  ------\n";
  for (const ServerPanel& p : snapshot.servers) {
    std::snprintf(line, sizeof(line),
                  "  %-6s  %-8s  %-5s  %-9s  %6.3f  x%5.2f  %6zu\n",
                  p.server_id.c_str(), p.grade.c_str(),
                  p.down ? "DOWN" : "up", p.breaker.c_str(),
                  p.calibration_factor, p.reliability_multiplier,
                  p.active_alerts);
    out += line;
  }
  if (snapshot.servers.empty()) out += "  (no servers)\n";

  out += "\nactive alerts:\n";
  bool any_active = false;
  for (const AlertRecord& a : snapshot.alerts) {
    if (!a.active()) continue;
    any_active = true;
    std::snprintf(line, sizeof(line), "  [%-5s] %s since t=%.3f: ",
                  EventSeverityName(a.severity), a.rule.c_str(), a.fired_at);
    out += line;
    out += a.message + "\n";
  }
  if (!any_active) out += "  (none)\n";

  out += "\nrecent events:\n";
  if (snapshot.events.empty()) {
    out += "  (none)\n";
  }
  for (const HealthEvent& e : snapshot.events) {
    std::snprintf(line, sizeof(line), "  #%-5llu t=%9.3f %-5s %-18s %-4s ",
                  static_cast<unsigned long long>(e.seq), e.at,
                  EventSeverityName(e.severity), EventTypeName(e.type),
                  e.server_id.empty() ? "-" : e.server_id.c_str());
    out += line;
    out += e.message + "\n";
  }
  return out;
}

}  // namespace fedcal::obs
