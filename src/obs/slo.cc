#include "obs/slo.h"

namespace fedcal::obs {

void SloWindow::Record(SimTime t, bool good) {
  samples_.Append(t, good ? 0.0 : 1.0);
  total_++;
  if (!good) total_bad_++;
}

BurnRate SloWindow::Evaluate(SimTime now) const {
  BurnRate burn;
  double budget = 1.0 - config_.objective;
  if (budget <= 0.0) budget = 1e-9;  // a 100% objective burns instantly
  size_t fast_bad = 0;
  size_t slow_bad = 0;
  // Scan newest to oldest; stop once past the slow window.
  for (size_t i = samples_.size(); i-- > 0;) {
    const TimePoint& p = samples_.at(i);
    double age = now - p.t;
    if (age > config_.slow_window_s) break;
    bool bad = p.value != 0.0;
    burn.slow_samples++;
    if (bad) slow_bad++;
    if (age <= config_.fast_window_s) {
      burn.fast_samples++;
      if (bad) fast_bad++;
    }
  }
  if (burn.fast_samples > 0) {
    burn.fast = (double(fast_bad) / double(burn.fast_samples)) / budget;
  }
  if (burn.slow_samples > 0) {
    burn.slow = (double(slow_bad) / double(burn.slow_samples)) / budget;
  }
  return burn;
}

}  // namespace fedcal::obs
