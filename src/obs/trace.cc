#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"  // FormatMetricValue

namespace fedcal::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kParse:
      return "parse";
    case SpanKind::kDecompose:
      return "decompose";
    case SpanKind::kOptimize:
      return "optimize";
    case SpanKind::kFragmentPlan:
      return "fragment-plan";
    case SpanKind::kRoute:
      return "route";
    case SpanKind::kAttempt:
      return "attempt";
    case SpanKind::kFragmentDispatch:
      return "fragment-dispatch";
    case SpanKind::kNetworkHop:
      return "network-hop";
    case SpanKind::kServerExec:
      return "server-exec";
    case SpanKind::kReplyHop:
      return "reply-hop";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kRetryWait:
      return "retry-wait";
    case SpanKind::kTimeout:
      return "timeout";
  }
  return "?";
}

const Span* QueryTrace::Find(uint64_t span_id) const {
  for (const auto& s : spans) {
    if (s.id == span_id) return &s;
  }
  return nullptr;
}

size_t QueryTrace::CountKind(SpanKind kind) const {
  return size_t(std::count_if(spans.begin(), spans.end(),
                              [kind](const Span& s) {
                                return s.kind == kind;
                              }));
}

QueryTrace& Tracer::TraceFor(uint64_t query_id) {
  auto it = index_.find(query_id);
  if (it != index_.end()) return traces_[it->second - base_];
  index_[query_id] = base_ + traces_.size();
  traces_.emplace_back();
  QueryTrace& trace = traces_.back();
  trace.query_id = query_id;
  EnforceRetention();
  return traces_.back();
}

void Tracer::EnforceRetention() {
  if (retention_ == 0) return;
  while (traces_.size() > retention_) {
    index_.erase(traces_.front().query_id);
    traces_.pop_front();
    ++base_;
  }
}

void Tracer::set_retention(size_t max_traces) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  retention_ = max_traces;
  EnforceRetention();
}

Span* Tracer::FindSpan(uint64_t query_id, uint64_t span_id) {
  auto it = index_.find(query_id);
  if (it == index_.end()) return nullptr;
  QueryTrace& trace = traces_[it->second - base_];
  for (auto& s : trace.spans) {
    if (s.id == span_id) return &s;
  }
  return nullptr;
}

uint64_t Tracer::BeginQuery(uint64_t query_id, const std::string& sql) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  QueryTrace& trace = TraceFor(query_id);
  if (trace.sql.empty()) trace.sql = sql;
  if (!trace.spans.empty()) return trace.spans[0].id;
  Span root;
  root.id = next_span_id_++;
  root.kind = SpanKind::kQuery;
  root.name = "query";
  root.start = Now();
  StampOpen(&root);
  trace.spans.push_back(std::move(root));
  return trace.spans[0].id;
}

uint64_t Tracer::StartSpan(uint64_t query_id, SpanKind kind,
                           const std::string& name, uint64_t parent_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  QueryTrace& trace = TraceFor(query_id);
  if (trace.spans.empty()) {
    // Layer below the integrator executing without a compiled query
    // (tests, probes): synthesize a root so spans always nest somewhere.
    Span root;
    root.id = next_span_id_++;
    root.kind = SpanKind::kQuery;
    root.name = "query";
    root.start = Now();
    StampOpen(&root);
    trace.spans.push_back(std::move(root));
  }
  Span span;
  span.id = next_span_id_++;
  span.parent_id = parent_id != 0 ? parent_id : trace.spans[0].id;
  span.kind = kind;
  span.name = name;
  span.start = Now();
  StampOpen(&span);
  trace.spans.push_back(std::move(span));
  return trace.spans.back().id;
}

void Tracer::EndSpan(uint64_t query_id, uint64_t span_id, bool failed,
                     const std::string& detail) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Span* span = FindSpan(query_id, span_id);
  if (span == nullptr || !span->open) return;
  span->open = false;
  span->end = Now();
  StampClose(span);
  span->failed = failed;
  if (!detail.empty()) span->detail = detail;
}

uint64_t Tracer::AddEvent(uint64_t query_id, SpanKind kind,
                          const std::string& name, uint64_t parent_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const uint64_t id = StartSpan(query_id, kind, name, parent_id);
  EndSpan(query_id, id);
  return id;
}

void Tracer::EndQuery(uint64_t query_id, bool failed,
                      const std::string& detail) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = index_.find(query_id);
  if (it == index_.end()) return;
  QueryTrace& trace = traces_[it->second - base_];
  // Close stragglers so the trace is self-consistent even on abort paths.
  for (size_t i = trace.spans.size(); i > 1; --i) {
    Span& s = trace.spans[i - 1];
    if (s.open) {
      s.open = false;
      s.end = Now();
      StampClose(&s);
    }
  }
  if (!trace.spans.empty()) {
    Span& root = trace.spans[0];
    if (root.open) {
      root.open = false;
      root.end = Now();
      StampClose(&root);
      root.failed = failed;
      if (!detail.empty()) root.detail = detail;
    }
  }
}

void Tracer::SetAttr(uint64_t query_id, uint64_t span_id,
                     const std::string& key, const std::string& value) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (Span* span = FindSpan(query_id, span_id)) span->attrs[key] = value;
}

void Tracer::SetQueryAttr(uint64_t query_id, const std::string& key,
                          const std::string& value) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = index_.find(query_id);
  if (it == index_.end()) return;
  QueryTrace& trace = traces_[it->second - base_];
  if (!trace.spans.empty()) trace.spans[0].attrs[key] = value;
}

void Tracer::SetServer(uint64_t query_id, uint64_t span_id,
                       const std::string& server_id, size_t signature) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (Span* span = FindSpan(query_id, span_id)) {
    span->server_id = server_id;
    span->signature = signature;
  }
}

void Tracer::SetCost(uint64_t query_id, uint64_t span_id,
                     const CostObservation& cost) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (Span* span = FindSpan(query_id, span_id)) {
    span->cost = cost;
    span->has_cost = true;
  }
}

const QueryTrace* Tracer::Find(uint64_t query_id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = index_.find(query_id);
  if (it == index_.end()) return nullptr;
  return &traces_[it->second - base_];
}

void Tracer::Clear() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  traces_.clear();
  index_.clear();
  base_ = 0;
}

namespace {

void RenderSpan(const QueryTrace& trace, const Span& span, int depth,
                std::string* out) {
  out->append(size_t(depth) * 2, ' ');
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-18s [%0.6f, %0.6f] %0.6fs",
                SpanKindName(span.kind), span.start, span.end,
                span.duration());
  *out += buf;
  if (!span.name.empty() && span.name != SpanKindName(span.kind)) {
    *out += " " + span.name;
  }
  if (!span.server_id.empty()) *out += " @" + span.server_id;
  if (span.has_cost) {
    std::snprintf(buf, sizeof(buf), " est=%.6g cal=%.6g obs=%.6g",
                  span.cost.raw_estimated_seconds,
                  span.cost.calibrated_seconds,
                  span.cost.observed_seconds);
    *out += buf;
  }
  for (const auto& [k, v] : span.attrs) *out += " " + k + "=" + v;
  if (span.failed) *out += " FAILED(" + span.detail + ")";
  if (span.open) *out += " OPEN";
  *out += "\n";
  for (const auto& child : trace.spans) {
    if (child.parent_id == span.id) {
      RenderSpan(trace, child, depth + 1, out);
    }
  }
}

}  // namespace

std::string Tracer::ToText(uint64_t query_id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const QueryTrace* trace = Find(query_id);
  if (trace == nullptr) return "no trace for query " +
                               std::to_string(query_id) + "\n";
  std::string out = "trace of query " + std::to_string(query_id);
  if (!trace->sql.empty()) out += ": " + trace->sql;
  out += "\n";
  if (const Span* root = trace->root()) {
    RenderSpan(*trace, *root, 1, &out);
  }
  return out;
}

std::string Tracer::ToJson(uint64_t query_id) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const QueryTrace* trace = Find(query_id);
  if (trace == nullptr) return "{}\n";
  std::string out = "{\"query_id\": " + std::to_string(query_id) +
                    ", \"spans\": [";
  bool first = true;
  for (const auto& s : trace->spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent_id) +
           ", \"kind\": \"" + SpanKindName(s.kind) + "\"" +
           ", \"name\": \"" + s.name + "\"" +
           ", \"start\": " + FormatMetricValue(s.start) +
           ", \"end\": " + FormatMetricValue(s.end) +
           ", \"failed\": " + (s.failed ? "true" : "false");
    if (s.has_wall) {
      out += ", \"tid\": " + std::to_string(s.tid) +
             ", \"wall_start\": " + FormatMetricValue(s.wall_start) +
             ", \"wall_end\": " + FormatMetricValue(s.wall_end);
    }
    if (!s.server_id.empty()) {
      out += ", \"server\": \"" + s.server_id + "\"";
    }
    if (s.has_cost) {
      out += ", \"est\": " + FormatMetricValue(s.cost.raw_estimated_seconds) +
             ", \"cal\": " + FormatMetricValue(s.cost.calibrated_seconds) +
             ", \"obs\": " + FormatMetricValue(s.cost.observed_seconds);
    }
    for (const auto& [k, v] : s.attrs) {
      out += ", \"" + k + "\": \"" + v + "\"";
    }
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace fedcal::obs
