#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace fedcal::obs {

class FlightRecorder;

/// \brief Chrome-trace-event JSON exporter over the Tracer — one file
/// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
///
/// Two renderings of the same spans:
///  - **Virtual (sim mode)**: timestamps are virtual seconds, one track
///    per server (plus track 0 for integrator-local work). Deterministic
///    across runs of the same seed, so it can be golden-tested.
///  - **Wall (serving mode)**: timestamps are the spans' wall stamps, one
///    track per OS thread (dispatcher / worker-N labels from the serving
///    runtime). This is the view that shows genuine overlap: dispatcher
///    serialization, worker idle gaps, contention stalls.
///
/// Counter tracks ("ph":"C" — heap depth, qps, contended acquisitions)
/// are appended by the harness via AddCounterSample; fedtop --follow
/// samples them once per frame.
///
/// When a FlightRecorder is attached and a query's DecisionRecord carries
/// an operator profile, server-exec and merge spans additionally render
/// nested per-operator slices (cat "operator"): each operator occupies a
/// share of its span's window proportional to its cumulative virtual time,
/// so the Perfetto view shows *where inside the fragment* the time went.
class TraceExporter {
 public:
  explicit TraceExporter(const Tracer* tracer,
                         const FlightRecorder* recorder = nullptr)
      : tracer_(tracer), recorder_(recorder) {}

  /// Appends one sample to counter track `track` at time `t_seconds`
  /// (same clock the spans use: virtual in sim mode, wall in serving).
  void AddCounterSample(const std::string& track, double t_seconds,
                        double value);

  /// Renders with the tracer's native clock: wall when the tracer stamps
  /// wall clocks (serving mode), virtual otherwise.
  std::string ToChromeJson() const;
  /// Explicit clock choice. `wall_clock` requires wall stamps on the
  /// spans; spans without them (or still open) are skipped.
  std::string ToChromeJson(bool wall_clock) const;

 private:
  struct CounterSample {
    std::string track;
    double t = 0.0;
    double value = 0.0;
  };

  const Tracer* tracer_;
  const FlightRecorder* recorder_;  ///< optional profile source
  std::vector<CounterSample> counters_;
};

/// One-call convenience: export `tracer`'s spans with its native clock.
std::string ChromeTraceJson(const Tracer& tracer);

}  // namespace fedcal::obs
