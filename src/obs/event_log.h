#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/timed_mutex.h"
#include "core/clock.h"

namespace fedcal::obs {

/// \brief Operator-facing severity of a health event. Deliberately mirrors
/// LogLevel so retargeted FEDCAL_LOG lines map 1:1.
enum class EventSeverity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* EventSeverityName(EventSeverity severity);

/// \brief Every kind of state transition the health layer understands.
///
/// Typed events (everything except kLog) are emitted at the exact call
/// site that makes the transition — breaker trips in the QCC, hedges in
/// the integrator, fault activations in the injector — so each carries
/// first-hand correlation ids. kLog events are FEDCAL_LOG lines forwarded
/// by an installed LoggerEventSink; they cover call sites the typed
/// taxonomy has not reached.
enum class EventType {
  kLog,               ///< retargeted FEDCAL_LOG line
  kServerDown,        ///< §3.3 availability daemon marked a server down
  kServerUp,          ///< server recovered
  kBreakerOpen,       ///< circuit breaker tripped
  kBreakerHalfOpen,   ///< breaker began probing
  kBreakerClosed,     ///< breaker closed after successful probes
  kCalibrationDrift,  ///< flight-recorder drift detector fired (§3.4)
  kRetry,             ///< fragment failure triggered a re-route
  kRetryExhausted,    ///< retry/deadline budget ran out; query failed
  kDeadlineExpired,   ///< per-fragment deadline fired
  kHedgeFired,        ///< backup fragment issued to an alternate server
  kHedgeCancelled,    ///< hedge race settled; loser cancelled
  kCacheEpochBump,    ///< plan-cache routing epoch invalidated
  kFaultInjected,     ///< fault-injection schedule applied an event
  kFaultReverted,     ///< timed fault auto-reverted
  kAlertFiring,       ///< health engine raised an alert
  kAlertResolved,     ///< health engine resolved an alert
  kReRouted,          ///< mid-query re-route switched the remainder plan
  kReRouteHeld,       ///< re-route trigger evaluated but no switch happened
  kEstimateMiss,      ///< profiled run's cardinality q-error crossed the bar
};

inline constexpr size_t kNumEventTypes = 20;

const char* EventTypeName(EventType type);
/// Inverse of EventTypeName / EventSeverityName (snapshot readers).
bool EventTypeFromName(const std::string& name, EventType* out);
bool EventSeverityFromName(const std::string& name, EventSeverity* out);

/// \brief One entry of the structured event log.
///
/// `seq` is a lifetime-monotonic id (1-based) that survives ring
/// eviction, so alerts can cross-reference events that may have already
/// scrolled out of the ring. Correlation fields are best-effort: events
/// raised outside any query carry query_id == 0, fleet-wide events carry
/// an empty server_id.
struct HealthEvent {
  uint64_t seq = 0;
  SimTime at = 0.0;
  EventType type = EventType::kLog;
  EventSeverity severity = EventSeverity::kInfo;
  std::string server_id;
  uint64_t query_id = 0;
  uint64_t span_id = 0;  ///< tracer span active at emission, 0 = none
  std::string message;
};

struct EventLogConfig {
  bool enabled = true;
  size_t capacity = 512;  ///< events retained; oldest evicted beyond this
};

/// \brief Bounded ring of typed, severity-tagged health events stamped in
/// virtual time.
///
/// Like the flight recorder, the log is passive: emitting never schedules
/// simulator work, never draws randomness, and is O(1), so enabling it
/// cannot perturb a deterministic run. An optional observer sees every
/// event as it is emitted — the health engine hangs off this hook.
class EventLog {
 public:
  using Observer = std::function<void(const HealthEvent&)>;

  explicit EventLog(const ExecutionContext* sim, EventLogConfig config = {})
      : sim_(sim), config_(config), enabled_(config.enabled) {
    if (config_.capacity == 0) config_.capacity = 1;
  }

  /// Lock-free: the disabled path of Emit is one relaxed load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  const EventLogConfig& config() const { return config_; }

  /// Appends one event stamped at the simulator's current virtual time
  /// and returns its seq (0 when the log is disabled). The observer, if
  /// installed, runs synchronously after the append.
  uint64_t Emit(EventType type, EventSeverity severity, std::string server_id,
                uint64_t query_id, std::string message, uint64_t span_id = 0);

  /// Unsynchronized view for single-threaded readers (shell, exporters);
  /// concurrent contexts use Tail()/Find() or read after quiescing.
  const std::deque<HealthEvent>& events() const { return events_; }
  size_t size() const {
    std::lock_guard<TimedRecursiveMutex> lock(mu_);
    return events_.size();
  }
  uint64_t total_emitted() const {
    std::lock_guard<TimedRecursiveMutex> lock(mu_);
    return total_emitted_;
  }
  /// Lifetime count per severity (indexed by EventSeverity).
  uint64_t severity_count(EventSeverity severity) const {
    std::lock_guard<TimedRecursiveMutex> lock(mu_);
    return severity_counts_[static_cast<size_t>(severity)];
  }

  /// The most recent `n` retained events, oldest first.
  std::vector<const HealthEvent*> Tail(size_t n) const;

  /// nullptr when `seq` has been evicted (or never emitted).
  const HealthEvent* Find(uint64_t seq) const;

  /// The health engine (or anything else) can watch emissions live.
  void SetObserver(Observer observer) { observer_ = std::move(observer); }

  void Clear();

 private:
  /// Serializes emission (and therefore the health engine, which runs
  /// inside the observer hook). Recursive: the observer may emit again
  /// (alert-lifecycle events are themselves logged).
  mutable TimedRecursiveMutex mu_{"event_log"};
  const ExecutionContext* sim_;
  EventLogConfig config_;
  std::atomic<bool> enabled_;
  std::deque<HealthEvent> events_;
  uint64_t total_emitted_ = 0;
  uint64_t severity_counts_[4] = {0, 0, 0, 0};
  Observer observer_;
};

/// \brief LogSink adapter: forwards FEDCAL_LOG lines into an EventLog as
/// kLog events, preserving severity and pointing at the file:line.
class LoggerEventSink : public LogSink {
 public:
  explicit LoggerEventSink(EventLog* log) : log_(log) {}

  void OnLog(LogLevel level, const std::string& file, int line,
             const std::string& message) override;

 private:
  EventLog* log_;
};

/// \brief RAII installer for a LoggerEventSink on the process-wide Logger.
/// Restores the previous sink on destruction (only if still installed, so
/// overlapping scopes unwind safely).
class ScopedLogSink {
 public:
  ScopedLogSink(EventLog* log, LogLevel sink_level = LogLevel::kInfo);
  ~ScopedLogSink();

  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LoggerEventSink sink_;
  LogSink* previous_sink_;
  LogLevel previous_level_;
};

}  // namespace fedcal::obs
