#include "obs/trace_export.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/thread_ident.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"  // FormatMetricValue
#include "obs/operator_profile.h"

namespace fedcal::obs {

namespace {

/// Chrome trace timestamps are microseconds.
std::string Micros(double seconds) {
  return FormatMetricValue(seconds * 1e6);
}

void AppendSpanArgs(const Span& span, uint64_t query_id, std::string* out) {
  *out += "\"args\":{\"query_id\":" + std::to_string(query_id);
  if (!span.server_id.empty()) {
    *out += ",\"server\":" + JsonQuote(span.server_id);
  }
  if (span.failed) {
    *out += ",\"failed\":true";
    if (!span.detail.empty()) *out += ",\"detail\":" + JsonQuote(span.detail);
  }
  if (span.has_cost) {
    *out += ",\"est\":" + FormatMetricValue(span.cost.raw_estimated_seconds) +
            ",\"cal\":" + FormatMetricValue(span.cost.calibrated_seconds) +
            ",\"obs\":" + FormatMetricValue(span.cost.observed_seconds);
  }
  for (const auto& [k, v] : span.attrs) {
    // Sequential appends: gcc 12 misfires -Wrestrict on `"," + temporary`.
    *out += ',';
    *out += JsonQuote(k);
    *out += ':';
    *out += JsonQuote(v);
  }
  *out += "}";
}

/// Renders `node`'s subtree as nested "X" slices inside [start, start+dur].
/// Children occupy leading shares of the parent window proportional to
/// their cumulative virtual time (equal split when the parent recorded
/// none); the trailing remainder is the parent's self time. Proportional,
/// not absolute: the span's window is queueing + service at the server,
/// the profile only knows the execution's virtual cost breakdown.
void AppendOperatorSlices(const OperatorProfile& node, double start,
                          double dur, int tid, uint64_t query_id,
                          std::string* out) {
  *out += ",\n  {\"name\":" + JsonQuote(node.op) +
          ",\"cat\":\"operator\",\"ph\":\"X\",\"ts\":" + Micros(start) +
          ",\"dur\":" + Micros(dur) +
          ",\"pid\":0,\"tid\":" + std::to_string(tid) +
          ",\"args\":{\"query_id\":" + std::to_string(query_id) +
          ",\"est_rows\":" + FormatMetricValue(node.estimated_rows) +
          ",\"rows_out\":" + std::to_string(node.rows_out) +
          ",\"q_error\":" + FormatMetricValue(node.q_error()) +
          ",\"cum_virtual_s\":" + FormatMetricValue(node.cum_virtual_s);
  if (!node.detail.empty()) {
    // Sequential appends: gcc 12 misfires -Wrestrict on `"," + temporary`.
    *out += ",\"detail\":";
    *out += JsonQuote(node.detail);
  }
  *out += "}}";
  size_t live_children = 0;
  for (const auto& child : node.children) {
    if (child != nullptr) ++live_children;
  }
  if (live_children == 0) return;
  double cursor = start;
  for (const auto& child : node.children) {
    if (child == nullptr) continue;
    double frac = node.cum_virtual_s > 0.0
                      ? child->cum_virtual_s / node.cum_virtual_s
                      : 1.0 / double(live_children);
    frac = std::min(1.0, std::max(0.0, frac));
    double child_dur = std::min(dur * frac, start + dur - cursor);
    if (child_dur < 0.0) child_dur = 0.0;
    AppendOperatorSlices(*child, cursor, child_dur, tid, query_id, out);
    cursor += child_dur;
  }
}

void AppendMetadata(int tid, const std::string& name, bool* first,
                    std::string* out) {
  *out += *first ? "\n" : ",\n";
  *first = false;
  *out += "  {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
          std::to_string(tid) + ",\"args\":{\"name\":" + JsonQuote(name) +
          "}}";
}

}  // namespace

void TraceExporter::AddCounterSample(const std::string& track,
                                     double t_seconds, double value) {
  counters_.push_back(CounterSample{track, t_seconds, value});
}

std::string TraceExporter::ToChromeJson() const {
  return ToChromeJson(tracer_->wall_stamps());
}

std::string TraceExporter::ToChromeJson(bool wall_clock) const {
  // Track assignment. Virtual mode: one track per server, integrator work
  // on track 0 — deterministic (sorted server ids). Wall mode: the dense
  // thread id that opened each span, labelled by the serving runtime.
  std::map<std::string, int> server_tid;
  std::set<int> thread_tids;
  if (!wall_clock) {
    std::set<std::string> servers;
    for (const auto& trace : tracer_->traces()) {
      for (const auto& span : trace.spans) {
        if (!span.server_id.empty()) servers.insert(span.server_id);
      }
    }
    int next = 1;
    for (const auto& id : servers) server_tid[id] = next++;
  } else {
    for (const auto& trace : tracer_->traces()) {
      for (const auto& span : trace.spans) {
        if (span.has_wall && span.tid >= 0) thread_tids.insert(span.tid);
      }
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  out += first ? "\n" : "";
  first = false;
  out += "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
         "\"args\":{\"name\":\"fedcal\"}}";

  if (!wall_clock) {
    AppendMetadata(0, "integrator", &first, &out);
    for (const auto& [server, tid] : server_tid) {
      AppendMetadata(tid, "server " + server, &first, &out);
    }
  } else {
    std::map<int, std::string> labels;
    for (const auto& [id, label] : ThreadLabels()) labels[id] = label;
    for (int tid : thread_tids) {
      auto it = labels.find(tid);
      AppendMetadata(tid,
                     it != labels.end() ? it->second
                                        : "thread-" + std::to_string(tid),
                     &first, &out);
    }
  }

  for (const auto& trace : tracer_->traces()) {
    // Operator profile for this query, when the recorder holds one. Each
    // fragment tree renders under exactly one server-exec span (the first
    // non-failed span matching its server + signature — the successful
    // attempt's execution), the merge tree under the first merge span.
    const QueryProfile* profile = nullptr;
    if (recorder_ != nullptr) {
      if (const DecisionRecord* record = recorder_->Find(trace.query_id)) {
        profile = record->profile.get();
      }
    }
    std::set<size_t> used_fragments;
    bool merge_rendered = false;
    for (const auto& span : trace.spans) {
      if (span.open) continue;  // exporters run after the run quiesces
      if (wall_clock && !span.has_wall) continue;
      const double start = wall_clock ? span.wall_start : span.start;
      const double end = wall_clock ? span.wall_end : span.end;
      int tid = 0;
      if (wall_clock) {
        tid = span.tid >= 0 ? span.tid : 0;
      } else if (!span.server_id.empty()) {
        tid = server_tid[span.server_id];
      }
      const char* kind = SpanKindName(span.kind);
      const std::string& name = span.name.empty() ? kind : span.name;
      out += ",\n  {\"name\":" + JsonQuote(name) + ",\"cat\":\"" + kind +
             "\",\"ph\":\"X\",\"ts\":" + Micros(start) +
             ",\"dur\":" + Micros(std::max(0.0, end - start)) +
             ",\"pid\":0,\"tid\":" + std::to_string(tid) + ",";
      AppendSpanArgs(span, trace.query_id, &out);
      out += "}";
      if (profile == nullptr || span.failed) continue;
      const double window = std::max(0.0, end - start);
      if (span.kind == SpanKind::kServerExec) {
        for (size_t f = 0; f < profile->fragments.size(); ++f) {
          const FragmentProfile& fragment = profile->fragments[f];
          if (used_fragments.count(f) != 0 || fragment.root == nullptr) {
            continue;
          }
          if (fragment.server_id != span.server_id) continue;
          if (span.signature != 0 && fragment.signature != span.signature) {
            continue;
          }
          used_fragments.insert(f);
          AppendOperatorSlices(*fragment.root, start, window, tid,
                               trace.query_id, &out);
          break;
        }
      } else if (span.kind == SpanKind::kMerge && !merge_rendered &&
                 profile->merge != nullptr) {
        merge_rendered = true;
        AppendOperatorSlices(*profile->merge, start, window, tid,
                             trace.query_id, &out);
      }
    }
  }

  for (const auto& sample : counters_) {
    out += ",\n  {\"name\":" + JsonQuote(sample.track) +
           ",\"ph\":\"C\",\"ts\":" + Micros(sample.t) +
           ",\"pid\":0,\"args\":{\"value\":" +
           FormatMetricValue(sample.value) + "}}";
  }

  out += "\n]}\n";
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer) {
  return TraceExporter(&tracer).ToChromeJson();
}

}  // namespace fedcal::obs
