#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace fedcal::obs {

// Operator-level runtime profiles (`EXPLAIN ANALYZE`, DESIGN.md §18).
//
// This header is deliberately std-only: the engine library records
// profiles but does not link fedcal_obs, so everything an executor needs
// lives here. Renderers and JSON (de)serializers are in
// obs/profile_export.h (fedcal_obs).

/// \brief One plan operator's runtime profile. Mirrors the plan tree the
/// executor ran: children are in execution order (build side before probe
/// side, matching both engines' recursion order).
///
/// "cum" covers the operator and everything below it; "self" is cum minus
/// the children's cum. Work/io units are the deterministic simulation
/// currency (identical across engines); virtual seconds are derived from
/// them by ApplyServerSpeeds using the executing server's effective
/// speeds; wall seconds are host-clock measurements and are the only
/// nondeterministic fields.
struct OperatorProfile {
  std::string op;      ///< PlanKindName of the node
  std::string detail;  ///< PlanNode::Describe() one-liner

  /// Optimizer's cardinality estimate for this node (plan annotation).
  double estimated_rows = 0.0;
  uint64_t rows_in = 0;   ///< rows consumed (children's output, or scanned)
  uint64_t rows_out = 0;  ///< rows produced
  uint64_t batches = 0;   ///< output batches (1 in the row engine)

  /// estimated_rows over the children's summed estimates (1.0 for leaves).
  double est_selectivity = 1.0;
  /// rows_out over rows_in (1.0 when rows_in == 0).
  double obs_selectivity = 1.0;

  double cum_work_units = 0.0;
  double cum_io_units = 0.0;
  double self_work_units = 0.0;
  double self_io_units = 0.0;

  /// Filled by ApplyServerSpeeds (0 until then).
  double cum_virtual_s = 0.0;
  double self_virtual_s = 0.0;

  /// Host wall clock; only stamped while profiling, never deterministic.
  double cum_wall_s = 0.0;
  double self_wall_s = 0.0;

  /// Arena bytes allocated under this node (columnar engine only).
  uint64_t arena_bytes = 0;

  std::vector<std::shared_ptr<OperatorProfile>> children;

  /// q-error of the cardinality estimate: max(est/obs, obs/est) with both
  /// sides floored at one row, so it is always >= 1 and symmetric.
  double q_error() const {
    return QError(estimated_rows, static_cast<double>(rows_out));
  }

  static double QError(double estimated, double observed) {
    const double e = std::max(estimated, 1.0);
    const double o = std::max(observed, 1.0);
    return std::max(e / o, o / e);
  }
};

/// \brief One fragment's profile as executed on a remote server.
struct FragmentProfile {
  std::string server_id;
  size_t fragment_index = 0;
  size_t signature = 0;  ///< literal-normalized fragment-plan fingerprint
  double estimated_seconds = 0.0;  ///< route-time calibrated estimate
  double observed_seconds = 0.0;   ///< server-reported service seconds
  std::shared_ptr<OperatorProfile> root;
};

/// \brief The per-query profile: every fragment's operator tree plus the
/// integrator-local merge tree, attached to the query's DecisionRecord.
struct QueryProfile {
  uint64_t query_id = 0;
  std::string sql;
  std::vector<FragmentProfile> fragments;
  /// Integrator-local merge/aggregation tree; null when the winning plan
  /// had no merge step (single-fragment pass-through).
  std::shared_ptr<OperatorProfile> merge;
  double merge_seconds = 0.0;

  /// Sum of every fragment root's output rows — by construction the rows
  /// that entered the merge (the invariant tests assert this).
  uint64_t FragmentOutputRows() const {
    uint64_t n = 0;
    for (const FragmentProfile& f : fragments) {
      if (f.root) n += f.root->rows_out;
    }
    return n;
  }
};

/// Converts a profile tree's work/io unit deltas into virtual seconds
/// through a server's effective speeds — the same formula RemoteServer
/// uses for service time, applied per operator. Speeds <= 0 are treated
/// as 1 (defensive; servers always report positive speeds).
inline void ApplyServerSpeeds(OperatorProfile* profile, double cpu_speed,
                              double io_speed) {
  if (profile == nullptr) return;
  if (cpu_speed <= 0.0) cpu_speed = 1.0;
  if (io_speed <= 0.0) io_speed = 1.0;
  const auto seconds = [&](double work, double io) {
    return (work - io) / cpu_speed + io / io_speed;
  };
  profile->cum_virtual_s =
      seconds(profile->cum_work_units, profile->cum_io_units);
  profile->self_virtual_s =
      seconds(profile->self_work_units, profile->self_io_units);
  for (const auto& child : profile->children) {
    ApplyServerSpeeds(child.get(), cpu_speed, io_speed);
  }
}

/// The worst per-operator cardinality q-error anywhere in the tree —
/// the "was the optimizer's row count wrong" verdict for a fragment.
inline double WorstQError(const OperatorProfile& node) {
  double worst = node.q_error();
  for (const auto& child : node.children) {
    worst = std::max(worst, WorstQError(*child));
  }
  return worst;
}

}  // namespace fedcal::obs
