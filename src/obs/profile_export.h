#pragma once

#include <memory>
#include <string>

#include "common/json.h"
#include "common/result.h"
#include "obs/flight_recorder.h"
#include "obs/operator_profile.h"

namespace fedcal::obs {

/// EXPLAIN ANALYZE-style rendering of one query profile: one indented
/// tree per fragment (estimated vs observed cardinality, selectivities,
/// virtual/wall timings, arena bytes) plus the integrator-side merge tree.
std::string ProfileText(const QueryProfile& profile);

/// One operator subtree, `indent` levels deep (building block of
/// ProfileText; exposed for tools that render a bare tree).
std::string OperatorProfileText(const OperatorProfile& node, size_t indent);

/// Serializes a query profile to JSON. This is the wire-compatibility
/// story for profiles at rest: every field a reader needs is a plain
/// key, and ProfileFromJson tolerates absent keys, so old snapshots
/// (without profiles) and new ones parse with the same reader.
std::string ProfileToJson(const QueryProfile& profile);

/// Parses ProfileToJson output (or any prefix-compatible document).
/// Missing optional members default; a malformed document is an error.
Result<std::shared_ptr<QueryProfile>> ProfileFromJson(const std::string& text);
/// Same, from an already-parsed node (e.g. a decision record's "profile"
/// member).
std::shared_ptr<QueryProfile> ProfileFromJsonValue(const JsonValue& value);

/// The cost-model accuracy scoreboard: per-(server, operator-kind) and
/// per-template rolling q-error / absolute-error aggregates, rendered as
/// the fedtop accuracy panel and the shell's `\accuracy` command.
std::string AccuracyText(const FlightRecorder& recorder);

}  // namespace fedcal::obs
