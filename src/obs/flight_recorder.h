#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/operator_profile.h"
#include "obs/timeseries.h"

namespace fedcal::obs {

/// \brief One fragment of one candidate plan, with its raw vs calibrated
/// price — the numbers the optimizer actually ranked by.
struct FragmentCostRecord {
  std::string server_id;
  size_t signature = 0;
  double raw_estimated_seconds = 0.0;
  double calibrated_seconds = 0.0;
};

/// \brief One candidate global plan as seen at plan-selection time —
/// winner or loser. Losers carry the reason they were not executed, which
/// is the answer to "why did query Q *not* go to server S?".
struct CandidatePlanRecord {
  size_t option_index = 0;       ///< position in the enumerated options
  std::string server_set;        ///< "+"-joined sorted server ids
  double total_calibrated_seconds = 0.0;
  double total_raw_seconds = 0.0;
  std::vector<FragmentCostRecord> fragments;
  bool chosen = false;
  bool in_rotation_group = false;
  /// Empty for the winner; otherwise why this plan lost ("priced at
  /// infinity", "exceeds tolerance", "rotation alternate", ...).
  std::string rejection_reason;
};

/// \brief The QCC-side state consulted for one server while pricing a
/// query: everything that turned raw estimates into calibrated costs.
struct ServerStateRecord {
  std::string server_id;
  double calibration_factor = 1.0;
  size_t calibration_samples = 0;
  double reliability_multiplier = 1.0;
  bool available = true;
  std::string breaker_state = "closed";
};

/// \brief The full routing decision for one query: every candidate plan
/// (not just the explain table's winner), the per-server calibration /
/// reliability / availability / breaker state consulted, and the §4
/// rotation outcome. Emitted at plan-selection time.
struct DecisionRecord {
  uint64_t query_id = 0;
  std::string sql;
  SimTime at = 0.0;
  /// True when the compile phase was served from the prepared-plan cache
  /// (candidates below were re-priced, not re-enumerated).
  bool cache_hit = false;
  /// The routing epoch the decision was priced under.
  uint64_t routing_epoch = 0;

  std::vector<CandidatePlanRecord> candidates;
  /// Enumerated options beyond the recorder's per-decision cap (0 = all
  /// candidates were retained).
  size_t candidates_truncated = 0;
  size_t chosen_index = 0;  ///< option_index of the executed plan

  // -- §4 load-distribution outcome -------------------------------------
  std::string balance_level;          ///< "none" | "fragment" | "global"
  double cost_tolerance = 0.0;        ///< §4.1/§4.2 clustering tolerance
  std::vector<size_t> rotation_group; ///< option indices deemed exchangeable
  uint64_t rotation_counter = 0;      ///< round-robin position consumed
  bool workload_threshold_met = true; ///< below it, rotation is skipped

  std::vector<ServerStateRecord> server_states;

  /// Operator-level runtime profile of the executed plan, attached after
  /// the query completed (AttachProfile). Null unless the run profiled
  /// (ExecConfig::profile) — the decision itself never depends on it.
  std::shared_ptr<QueryProfile> profile;

  const CandidatePlanRecord* Chosen() const {
    for (const auto& c : candidates) {
      if (c.chosen) return &c;
    }
    return nullptr;
  }
};

/// \brief Rolling cardinality-accuracy aggregate for one scoreboard cell —
/// either a (server, operator-kind) pair or a plan fingerprint. Feeds the
/// fedtop accuracy panel and the `\accuracy` shell command.
struct AccuracyCell {
  TimeSeriesRing q_error;    ///< rolling q-error samples
  TimeSeriesRing abs_error;  ///< rolling |observed - estimated| rows
  uint64_t samples = 0;      ///< lifetime sample count
  uint64_t misses = 0;       ///< samples with q-error >= estimate_miss_qerror
  double last_estimated = 0.0;
  double last_observed = 0.0;
};

/// \brief Free-form annotation from an advisory component (what-if
/// enumerations, replica-advisor recommendations) that contextualizes
/// nearby decisions.
struct RecorderNote {
  SimTime at = 0.0;
  std::string source;  ///< "whatif", "replica_advisor", ...
  std::string text;
};

/// \brief One mid-query re-route evaluation, chained to the query's
/// original DecisionRecord by query_id. Every trigger produces a record —
/// switches, hysteresis holds, and budget-exhausted ignores alike — so
/// `\explain` can show the full decision chain, not just the turns taken.
struct ReRouteRecord {
  uint64_t query_id = 0;
  size_t sequence = 0;  ///< 1-based position in this query's chain
  SimTime at = 0.0;
  /// What woke the controller: "epoch-bump(<reason>)",
  /// "fragment-timeout(<server>)", "hedge-loss(<server>)",
  /// "retry-exhausted(<server>)".
  std::string trigger;
  uint64_t routing_epoch = 0;       ///< epoch at evaluation time
  size_t remaining_fragments = 0;   ///< not yet settled when triggered
  size_t completed_fragments = 0;   ///< results kept across a switch
  std::string from_servers;         ///< "+"-joined server set, current plan
  std::string to_servers;           ///< winner's server set ("" = no switch)
  double current_remainder_seconds = 0.0;  ///< calibrated, remaining work
  double best_alternative_seconds = 0.0;
  double gap_seconds = 0.0;        ///< current - best alternative
  double threshold_seconds = 0.0;  ///< hysteresis bar the gap had to clear
  bool forced = false;             ///< trigger bypassed hysteresis
  bool switched = false;
  /// "switched" | "held: ..." | "ignored: ..." — the one-line verdict.
  std::string outcome;
};

/// \brief Boundedness knobs: every retention class is a ring.
struct FlightRecorderConfig {
  bool enabled = true;
  /// DecisionRecords retained (oldest evicted beyond this).
  size_t max_decisions = 512;
  /// Candidate plans embedded per decision; the cheapest are kept and the
  /// chosen plan is always retained.
  size_t max_candidates_per_decision = 16;
  /// Samples retained per (server, metric) ring.
  size_t timeseries_capacity = 256;
  /// Drift events and notes retained.
  size_t max_events = 128;
  /// ReRouteRecords retained (oldest evicted beyond this).
  size_t max_reroutes = 256;
  DriftDetectorConfig drift;
  /// Cardinality q-error at or above which an accuracy sample counts as an
  /// estimate miss (profiled runs only). q-error is symmetric and >= 1;
  /// 10 means "the optimizer was an order of magnitude off".
  double estimate_miss_qerror = 10.0;
};

/// \brief The routing flight recorder: decision-level explain plus
/// per-server calibration time-series.
///
/// PR 2's tracer answers "what happened to query Q"; this answers "why
/// did the router send it there" (losing candidates, consulted state) and
/// "how did the router's beliefs evolve" (bounded time-series of the
/// calibration, reliability, availability, and breaker signals, sampled
/// on every QCC update in virtual time, with a drift detector on the
/// calibration factor). All state is strictly bounded.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {})
      : config_(config), enabled_(config.enabled) {}

  /// Lock-free: the disabled path of every Record/Sample is one load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  const FlightRecorderConfig& config() const { return config_; }

  // -- Decisions ---------------------------------------------------------

  /// Appends one decision, truncating its candidate list to the cap
  /// (chosen always kept) and evicting the oldest decision past
  /// max_decisions. No-op while disabled.
  void Record(DecisionRecord record);

  /// Returned pointers stay valid until the ring evicts that record;
  /// concurrent contexts copy what they need or read after quiescing.
  const DecisionRecord* Find(uint64_t query_id) const;
  const DecisionRecord* Latest() const;
  /// Unsynchronized view for single-threaded readers (shell, exporters).
  const std::deque<DecisionRecord>& decisions() const { return decisions_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return decisions_.size();
  }
  uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_recorded_;
  }

  // -- Time series -------------------------------------------------------

  /// Appends one sample; kCalibrationFactor samples additionally run the
  /// drift detector. No-op while disabled.
  void Sample(const std::string& server_id, ServerMetric metric, SimTime t,
              double value);

  /// nullptr when the (server, metric) pair has never been sampled.
  const TimeSeriesRing* Series(const std::string& server_id,
                               ServerMetric metric) const;
  std::vector<std::string> SampledServers() const;

  const std::deque<DriftEvent>& drift_events() const { return drift_events_; }
  uint64_t total_drift_events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_drift_events_;
  }

  // -- Mid-query re-routes ------------------------------------------------

  /// Appends one re-route evaluation, evicting the oldest past
  /// max_reroutes. No-op while disabled.
  void RecordReRoute(ReRouteRecord record);

  /// This query's chain, oldest first (empty when never re-evaluated or
  /// already evicted).
  std::vector<const ReRouteRecord*> ReRoutesFor(uint64_t query_id) const;
  const std::deque<ReRouteRecord>& reroutes() const { return reroutes_; }
  uint64_t total_reroutes_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_reroutes_;
  }

  // -- Profiles & cardinality-accuracy scoreboard ------------------------

  /// Attaches the executed query's operator profile to its DecisionRecord.
  /// Returns false when the decision was never recorded or was already
  /// evicted. No-op (false) while disabled.
  bool AttachProfile(uint64_t query_id, std::shared_ptr<QueryProfile> profile);

  /// Records one operator-level accuracy sample into the (server,
  /// operator-kind) cell. Returns true when the sample's q-error reaches
  /// config().estimate_miss_qerror — an estimate miss.
  bool RecordAccuracySample(const std::string& server_id,
                            const std::string& op, SimTime t,
                            double estimated_rows, double observed_rows);

  /// Records one template-level sample: the worst operator q-error seen in
  /// one profiled run of the fingerprint. Returns true on a miss.
  bool RecordTemplateAccuracy(size_t signature, SimTime t, double q_error,
                              double abs_error);

  /// Unsynchronized views for single-threaded readers (fedtop, shell).
  const std::map<std::pair<std::string, std::string>, AccuracyCell>&
  accuracy_by_server_op() const {
    return accuracy_cells_;
  }
  const std::map<size_t, AccuracyCell>& accuracy_by_template() const {
    return accuracy_templates_;
  }
  uint64_t total_accuracy_samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_accuracy_samples_;
  }
  uint64_t total_estimate_misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_estimate_misses_;
  }

  // -- Notes -------------------------------------------------------------

  void AddNote(SimTime t, std::string source, std::string text);
  const std::deque<RecorderNote>& notes() const { return notes_; }

  void Clear();

 private:
  using SeriesArray = std::array<TimeSeriesRing, kNumServerMetrics>;

  void CheckDrift(const std::string& server_id, const TimeSeriesRing& ring,
                  SimTime t, double value);

  /// One short critical section per append/lookup: decisions, series,
  /// notes, and re-routes share the recorder's rings and indexes.
  mutable std::mutex mu_;
  FlightRecorderConfig config_;
  std::atomic<bool> enabled_;

  std::deque<DecisionRecord> decisions_;
  std::unordered_map<uint64_t, size_t> index_;  ///< query_id -> pos + base_
  size_t base_ = 0;  ///< decisions evicted from the front
  uint64_t total_recorded_ = 0;

  std::map<std::string, SeriesArray> series_;
  std::deque<DriftEvent> drift_events_;
  uint64_t total_drift_events_ = 0;
  std::map<std::string, SimTime> last_drift_at_;

  std::deque<RecorderNote> notes_;

  std::deque<ReRouteRecord> reroutes_;
  uint64_t total_reroutes_ = 0;

  /// Updates `cell` with one sample; returns true on a miss.
  bool UpdateAccuracyCell(AccuracyCell& cell, SimTime t, double q_error,
                          double abs_error, double estimated, double observed);

  std::map<std::pair<std::string, std::string>, AccuracyCell> accuracy_cells_;
  std::map<size_t, AccuracyCell> accuracy_templates_;
  uint64_t total_accuracy_samples_ = 0;
  uint64_t total_estimate_misses_ = 0;
};

}  // namespace fedcal::obs
