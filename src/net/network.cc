#include "net/network.h"

#include <algorithm>

namespace fedcal {

double NetworkLink::LatencyAt(SimTime now) const {
  double latency = config_.base_latency_s;
  for (const auto& e : episodes_) {
    if (now >= e.start && now < e.end) latency *= e.latency_multiplier;
  }
  return latency;
}

double NetworkLink::BandwidthAt(SimTime now) const {
  double bw = config_.bandwidth_bytes_per_s;
  for (const auto& e : episodes_) {
    if (now >= e.start && now < e.end) {
      bw /= std::max(1.0, e.bandwidth_divisor);
    }
  }
  return std::max(1.0, bw);
}

double NetworkLink::TransferTime(size_t bytes, SimTime now) {
  double t = LatencyAt(now) +
             static_cast<double>(bytes) / BandwidthAt(now);
  if (config_.jitter_frac > 0.0) {
    const double j = rng_.Normal(1.0, config_.jitter_frac);
    t *= std::max(0.1, j);
  }
  return std::max(1e-9, t);
}

double NetworkLink::ProbeRtt(SimTime now) {
  // Two small control messages; serialization cost is negligible.
  return 2.0 * LatencyAt(now);
}

void Network::AddLink(const std::string& server_id, LinkConfig config) {
  links_.erase(server_id);
  links_.emplace(server_id, NetworkLink(server_id, config, rng_.Fork()));
}

Result<NetworkLink*> Network::GetLink(const std::string& server_id) {
  auto it = links_.find(server_id);
  if (it == links_.end()) {
    return Status::NotFound("no network link to server " + server_id);
  }
  return &it->second;
}

double Network::TransferTime(const std::string& server_id, size_t bytes,
                             SimTime now) {
  auto it = links_.find(server_id);
  const double t = it == links_.end()
                       ? LinkConfig{}.base_latency_s
                       : it->second.TransferTime(bytes, now);
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("net.transfers").Add();
    telemetry_->metrics.counter("net.bytes").Add(bytes);
    telemetry_->metrics.histogram("net.transfer_s").Record(t);
    telemetry_->metrics.histogram("net.transfer_s." + server_id).Record(t);
  }
  return t;
}

std::vector<std::string> Network::server_ids() const {
  std::vector<std::string> ids;
  ids.reserve(links_.size());
  for (const auto& [id, link] : links_) ids.push_back(id);
  return ids;
}

}  // namespace fedcal
