#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "obs/telemetry.h"
#include "core/clock.h"

namespace fedcal {

/// \brief Static parameters of the link between the integrator and one
/// remote server.
struct LinkConfig {
  double base_latency_s = 0.005;          ///< one-way propagation delay
  double bandwidth_bytes_per_s = 12.5e6;  ///< ~100 Mbit/s
  double jitter_frac = 0.0;               ///< stddev of multiplicative jitter
};

/// \brief A transient congestion episode: between `start` and `end`, the
/// link's latency is multiplied and its bandwidth divided by the given
/// factors. Episodes may overlap; effects compose multiplicatively.
struct CongestionEpisode {
  SimTime start = 0.0;
  SimTime end = 0.0;
  double latency_multiplier = 1.0;
  double bandwidth_divisor = 1.0;
};

/// \brief One integrator <-> server link with dynamic conditions.
///
/// The federated optimizer only ever sees the admin-configured static
/// latency (LinkConfig::base_latency_s, mirrored into the catalog); the
/// *actual* transfer times produced here include congestion and jitter —
/// the gap is one of the signals QCC's calibration factor absorbs.
class NetworkLink {
 public:
  NetworkLink(std::string server_id, LinkConfig config, Rng rng)
      : server_id_(std::move(server_id)), config_(config), rng_(rng) {}

  const std::string& server_id() const { return server_id_; }
  const LinkConfig& config() const { return config_; }

  void AddCongestion(CongestionEpisode episode) {
    episodes_.push_back(episode);
  }
  void ClearCongestion() { episodes_.clear(); }

  /// Effective one-way latency at virtual time `now`.
  double LatencyAt(SimTime now) const;
  /// Effective bandwidth at virtual time `now`.
  double BandwidthAt(SimTime now) const;

  /// Simulated seconds to move `bytes` across the link starting at `now`
  /// (latency + serialization; jitter applied if configured). Always > 0.
  double TransferTime(size_t bytes, SimTime now);

  /// Round-trip time for a tiny control message (availability probes).
  double ProbeRtt(SimTime now);

 private:
  std::string server_id_;
  LinkConfig config_;
  std::vector<CongestionEpisode> episodes_;
  Rng rng_;
};

/// \brief All links of the federation, keyed by remote server id.
class Network {
 public:
  explicit Network(uint64_t seed = 7) : rng_(seed) {}

  /// Registers (or replaces) the link to `server_id`.
  void AddLink(const std::string& server_id, LinkConfig config);

  /// Emits transfer metrics to `telemetry` (nullable; nullptr disables).
  void SetTelemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

  Result<NetworkLink*> GetLink(const std::string& server_id);

  /// Convenience: transfer time, or the bare config latency for unknown
  /// links (so probes to unregistered servers still cost something).
  double TransferTime(const std::string& server_id, size_t bytes,
                      SimTime now);

  std::vector<std::string> server_ids() const;

 private:
  std::map<std::string, NetworkLink> links_;
  Rng rng_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace fedcal
