#pragma once

#include <string>
#include <utility>

namespace fedcal {

/// \brief Error categories used across all fedcal modules.
///
/// Modeled after the Arrow/RocksDB Status idiom: every fallible operation
/// returns a Status (or Result<T>), never throws across module boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kPlanError,
  kExecutionError,
  kUnavailable,     ///< remote server down / unreachable
  kTimeout,
  kInternal,
  kNotImplemented,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief A success-or-error outcome carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation). Use the factory functions
/// (Status::OK(), Status::InvalidArgument(...), ...) rather than the
/// constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// \brief Returns a copy with extra context prepended to the message.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace fedcal
