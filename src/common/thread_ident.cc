#include "common/thread_ident.h"

#include <atomic>
#include <map>
#include <mutex>

namespace fedcal {

namespace {
std::atomic<int> next_thread_id{0};

struct LabelRegistry {
  std::mutex mu;
  std::map<int, std::string> labels;
};

LabelRegistry& Labels() {
  static LabelRegistry* r = new LabelRegistry();  // never destroyed: threads
  return *r;                                      // may outlive static dtors
}
}  // namespace

int ThisThreadId() {
  thread_local const int id =
      next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SetThisThreadLabel(const std::string& label) {
  LabelRegistry& r = Labels();
  std::lock_guard<std::mutex> lock(r.mu);
  r.labels[ThisThreadId()] = label;
}

std::vector<std::pair<int, std::string>> ThreadLabels() {
  LabelRegistry& r = Labels();
  std::lock_guard<std::mutex> lock(r.mu);
  return {r.labels.begin(), r.labels.end()};
}

}  // namespace fedcal
