#include "common/arena.h"

#include <algorithm>
#include <cstring>

namespace fedcal {

void* Arena::AllocateBytes(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  while (current_ < chunks_.size()) {
    Chunk& c = chunks_[current_];
    const size_t aligned = (c.used + align - 1) & ~(align - 1);
    if (aligned + bytes <= c.capacity) {
      c.used = aligned + bytes;
      bytes_allocated_ += bytes;
      return c.data.get() + aligned;
    }
    ++current_;
  }
  Chunk* c = NewChunk(bytes + align);
  const size_t aligned = (c->used + align - 1) & ~(align - 1);
  c->used = aligned + bytes;
  bytes_allocated_ += bytes;
  return c->data.get() + aligned;
}

Arena::Chunk* Arena::NewChunk(size_t min_bytes) {
  Chunk c;
  c.capacity = std::max(chunk_bytes_, min_bytes);
  c.data = std::make_unique<uint8_t[]>(c.capacity);
  bytes_reserved_ += c.capacity;
  chunks_.push_back(std::move(c));
  current_ = chunks_.size() - 1;
  return &chunks_.back();
}

void Arena::Reset() {
  for (Chunk& c : chunks_) c.used = 0;
  current_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace fedcal
