#include "common/timed_mutex.h"

#include <algorithm>

namespace fedcal::obs {

LockSiteSnapshot LockSite::Snapshot() const {
  // Read order is the inverse of the write order (see the header): each
  // histogram snapshot synchronizes with the Record()s it includes, and
  // the acquire-load on contended_ pairs with OnContended's release, so
  // every counter read here is >= the stats read before it. A concurrent
  // snapshot therefore always sees wait.count <= contended <=
  // acquisitions and hold.count <= acquisitions.
  LockSiteSnapshot s;
  s.hold = hold_.Snapshot();
  s.wait = wait_.Snapshot();
  s.contended = contended_.load(std::memory_order_acquire);
  s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  return s;
}

LockSiteRegistry& LockSiteRegistry::Instance() {
  // Never destroyed: instrumented mutexes in statics (loggers, shells)
  // may unlock during static teardown, after this registry's dtor would
  // have run.
  static LockSiteRegistry* r = new LockSiteRegistry();
  return *r;
}

LockSite& LockSiteRegistry::Site(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, site] : sites_) {
    if (n == name) return *site;
  }
  sites_.emplace_back(name, new LockSite());  // leaked with the registry
  return *sites_.back().second;
}

std::vector<LockSiteSnapshot> LockSiteRegistry::SnapshotAll() const {
  std::vector<std::pair<std::string, const LockSite*>> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    items.assign(sites_.begin(), sites_.end());
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<LockSiteSnapshot> out;
  out.reserve(items.size());
  for (const auto& [name, site] : items) {
    out.push_back(site->Snapshot());
    out.back().site = name;
  }
  return out;
}

}  // namespace fedcal::obs
