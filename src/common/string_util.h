#pragma once

#include <string>
#include <vector>

namespace fedcal {

/// Joins the elements with `sep` between them.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single-character delimiter; empty tokens are kept.
std::vector<std::string> Split(const std::string& s, char delim);

/// ASCII lower/upper-casing (SQL keywords are ASCII).
std::string ToLower(std::string s);
std::string ToUpper(std::string s);

/// Strips leading and trailing whitespace.
std::string Trim(const std::string& s);

bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace fedcal
