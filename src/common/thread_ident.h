#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fedcal {

/// Dense per-process thread id: 0 for the first thread that asks, 1 for
/// the next, and so on. Cached in a thread_local after the first call, so
/// the steady-state cost is one TLS read. Dense ids make stable, compact
/// Chrome-trace `tid` tracks — std::thread::id values are opaque and
/// unordered.
int ThisThreadId();

/// Attaches a human-readable label ("dispatcher", "worker-3") to the
/// calling thread's dense id. The serving runtime labels its threads on
/// startup; the trace exporter turns labels into thread_name metadata.
/// Last writer wins.
void SetThisThreadLabel(const std::string& label);

/// All (id, label) pairs registered so far, sorted by id. Threads that
/// never called SetThisThreadLabel are absent.
std::vector<std::pair<int, std::string>> ThreadLabels();

}  // namespace fedcal
