#include "common/rng.h"

#include <cmath>

namespace fedcal {

int64_t Rng::Zipf(int64_t n, double s) {
  if (n <= 1) return 1;
  if (s <= 0.0) return UniformInt(1, n);
  // Rejection sampling against the integral of x^-s; adequate for the
  // moderate skews (s <= ~2) used by the data generator.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    const double u = UniformDouble(0.0, 1.0);
    const double v = UniformDouble(0.0, 1.0);
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<int64_t>(x);
    }
  }
}

}  // namespace fedcal
