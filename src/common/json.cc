#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace fedcal {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::AsDouble(double fallback) const {
  if (type == Type::kNumber) return number_value;
  if (type == Type::kBool) return bool_value ? 1.0 : 0.0;
  return fallback;
}

uint64_t JsonValue::AsU64(uint64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  if (number_value < 0.0) return fallback;
  return static_cast<uint64_t>(number_value);
}

bool JsonValue::AsBool(bool fallback) const {
  if (type == Type::kBool) return bool_value;
  if (type == Type::kNumber) return number_value != 0.0;
  return fallback;
}

namespace {

/// Recursive-descent parser over the raw byte string.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    Status s = ParseValue(root, /*depth=*/0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return ParseString(out.string_value);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseKeyword(JsonValue& out) {
    auto match = [&](const char* word) {
      size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = true;
      return Status::OK();
    }
    if (match("false")) {
      out.type = JsonValue::Type::kBool;
      out.bool_value = false;
      return Status::OK();
    }
    if (match("null")) {
      out.type = JsonValue::Type::kNull;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return Error("invalid number");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    out.type = JsonValue::Type::kNumber;
    out.number_value = v;
    return Status::OK();
  }

  Status ParseString(std::string& out) {
    if (!Consume('"')) return Error("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= unsigned(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= unsigned(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= unsigned(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (our exporters never emit
          // surrogate pairs).
          if (code < 0x80) {
            out.push_back(char(code));
          } else if (code < 0x800) {
            out.push_back(char(0xC0 | (code >> 6)));
            out.push_back(char(0x80 | (code & 0x3F)));
          } else {
            out.push_back(char(0xE0 | (code >> 12)));
            out.push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseObject(JsonValue& out, int depth) {
    Consume('{');
    out.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseString(key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      s = ParseValue(value, depth + 1);
      if (!s.ok()) return s;
      out.object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    Consume('[');
    out.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      Status s = ParseValue(value, depth + 1);
      if (!s.ok()) return s;
      out.array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace fedcal
