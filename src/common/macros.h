#pragma once

/// Propagate a non-OK Status from the current function.
#define FEDCAL_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::fedcal::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define FEDCAL_CONCAT_IMPL(a, b) a##b
#define FEDCAL_CONCAT(a, b) FEDCAL_CONCAT_IMPL(a, b)

/// Evaluate an expression returning Result<T>; on error propagate the
/// Status, otherwise bind the value to `lhs`.
#define FEDCAL_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  FEDCAL_ASSIGN_OR_RETURN_IMPL(FEDCAL_CONCAT(_res_, __LINE__), lhs, rexpr)

#define FEDCAL_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                  \
  if (!result_name.ok()) return result_name.status();          \
  lhs = std::move(result_name).MoveValue()

namespace fedcal {
/// Marks intentionally unused variables (e.g. in structured bindings).
template <typename... Args>
inline void Unused(Args&&...) {}
}  // namespace fedcal
