#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

// Lives in src/common so the layers below the telemetry spine (the
// serving runtime, the timed-mutex contention instrumentation) can record
// latencies without linking fedcal_obs. The namespace stays fedcal::obs:
// this *is* the telemetry histogram, it just sits one layer down.
namespace fedcal::obs {

/// \brief Aggregate view of one histogram at snapshot time.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Sum of all bucket counts at the instant the snapshot was taken.
  /// Always equals `count` because Snapshot() runs under the histogram's
  /// one mutex — the concurrency tests assert exactly that (a torn
  /// snapshot would disagree). Not serialized.
  uint64_t bucket_total = 0;

  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
};

/// \brief Log-linear latency histogram, cheap enough to update on every
/// event.
///
/// Values in (0, +inf) map to one of `kSubBuckets` linear sub-buckets
/// inside a power-of-two decade starting at `kMinValue` seconds; values
/// below kMinValue share bucket 0 and values beyond the top decade land in
/// a single overflow bucket. Percentile queries interpolate to the bucket
/// upper bound, clamped to the recorded [min, max] so p0/p100 are exact
/// and a one-sample histogram answers every percentile with that sample.
class LatencyHistogram {
 public:
  static constexpr double kMinValue = 1e-6;  ///< 1 microsecond resolution
  static constexpr int kDecades = 34;        ///< covers up to ~17e3 seconds
  static constexpr int kSubBuckets = 8;

  void Record(double seconds);

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : max_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : sum_ / double(count_);
  }

  /// p in [0, 100]. Returns 0 for an empty histogram. Monotone in p.
  double Percentile(double p) const;

  HistogramSnapshot Snapshot() const;

  /// Total bucket count including underflow (index 0) and overflow (last).
  static constexpr size_t kNumBuckets =
      size_t(kDecades) * kSubBuckets + 2;

  /// Index of the bucket `seconds` falls into (exposed for tests).
  static size_t BucketIndex(double seconds);
  /// Upper value bound of bucket `index` (inf for the overflow bucket).
  static double BucketUpperBound(size_t index);

 private:
  double PercentileLocked(double p) const;

  /// One short critical section per Record/Percentile: the bucket array,
  /// count, sum, and extrema must move together (concurrent emitters).
  mutable std::mutex mu_;
  std::vector<uint64_t> buckets_;  ///< sized lazily on first Record
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fedcal::obs
