#include "common/latency_histogram.h"

#include <cmath>
#include <limits>

namespace fedcal::obs {

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinValue)) return 0;  // underflow (and NaN) bucket
  const double scaled = seconds / kMinValue;
  const int decade = int(std::floor(std::log2(scaled)));
  if (decade >= kDecades) return kNumBuckets - 1;  // overflow bucket
  // Linear position inside [2^decade, 2^(decade+1)) * kMinValue.
  const double lo = std::ldexp(1.0, decade);
  const double frac = (scaled - lo) / lo;  // in [0, 1)
  int sub = int(frac * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + size_t(decade) * kSubBuckets + size_t(sub);
}

double LatencyHistogram::BucketUpperBound(size_t index) {
  if (index == 0) return kMinValue;
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const size_t decade = (index - 1) / kSubBuckets;
  const size_t sub = (index - 1) % kSubBuckets;
  const double lo = std::ldexp(1.0, int(decade)) * kMinValue;
  return lo + lo * double(sub + 1) / kSubBuckets;
}

void LatencyHistogram::Record(double seconds) {
  if (std::isnan(seconds)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[BucketIndex(seconds)];
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    if (seconds < min_) min_ = seconds;
    if (seconds > max_) max_ = seconds;
  }
  ++count_;
  sum_ += seconds;
}

double LatencyHistogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PercentileLocked(p);
}

double LatencyHistogram::PercentileLocked(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the sample answering this percentile (nearest-rank, 1-based).
  uint64_t rank = uint64_t(std::ceil(p / 100.0 * double(count_)));
  if (rank == 0) rank = 1;
  // The extreme ranks are tracked exactly; only interior ranks need the
  // bucket approximation.
  if (rank <= 1) return min_;
  if (rank >= count_) return max_;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp to the observed range: p0 == min, p100 == max, a one-sample
      // histogram answers with the sample itself, and the overflow
      // bucket's +inf bound collapses to the recorded max.
      double v = BucketUpperBound(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = count_ == 0 ? 0.0 : min_;
  s.max = count_ == 0 ? 0.0 : max_;
  s.p50 = PercentileLocked(50);
  s.p95 = PercentileLocked(95);
  s.p99 = PercentileLocked(99);
  for (uint64_t b : buckets_) s.bucket_total += b;
  return s;
}

}  // namespace fedcal::obs
