#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace fedcal {

/// \brief A parsed JSON document node.
///
/// Minimal by design: the repo only needs to re-read its own deterministic
/// exporters (health snapshots, bench JSON) in tools and tests, so this is
/// a plain value tree — no allocator tricks, no SAX mode. Object member
/// order is preserved as parsed.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;

  /// Typed accessors with defaults — tolerant of missing/mistyped nodes so
  /// snapshot readers degrade gracefully.
  double AsDouble(double fallback = 0.0) const;
  uint64_t AsU64(uint64_t fallback = 0) const;
  bool AsBool(bool fallback = false) const;
  const std::string& AsString() const { return string_value; }
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). Returns InvalidArgument with a byte offset on failure.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace fedcal
