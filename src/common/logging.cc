#include "common/logging.h"

#include <cstdio>

namespace fedcal {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Trims a path down to its basename for compact log lines.
const char* Basename(const std::string& path) {
  auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path.c_str() : path.c_str() + pos + 1;
}
}  // namespace

void Logger::Write(LogLevel level, const std::string& file, int line,
                   const std::string& message) {
  LogSink* s = sink();
  if (s != nullptr &&
      static_cast<int>(level) >= static_cast<int>(sink_level())) {
    std::lock_guard<obs::TimedRecursiveMutex> lock(sink_mu_);
    s->OnLog(level, Basename(file), line, message);
  }
  if (static_cast<int>(level) < static_cast<int>(this->level())) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace fedcal
