#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/latency_histogram.h"

// Contention instrumentation for the serving runtime's shared surfaces
// (plan cache, calibration shards, event log, explain table). A
// TimedMutex is a drop-in std::mutex that attributes every acquisition to
// a named *site* in a process-wide registry: acquisition and contention
// counters plus wait (contended acquisitions only) and hold histograms.
//
// Cost model: the uncontended fast path is one try_lock, one steady-clock
// read, and a relaxed counter bump; unlock adds one clock read and one
// histogram record (tens of ns, gated by bench_micro_sched). Configure
// with -DFEDCAL_TIMED_MUTEX=OFF to compile every TimedMutex down to a
// plain mutex (the registry then stays empty).
namespace fedcal::obs {

/// \brief One lock site's stats at an instant.
struct LockSiteSnapshot {
  std::string site;
  uint64_t acquisitions = 0;  ///< every successful lock()/try_lock()
  uint64_t contended = 0;     ///< lock() calls that had to block
  HistogramSnapshot wait;     ///< blocked time, contended acquisitions only
  HistogramSnapshot hold;     ///< lock() .. unlock() span (outermost, for
                              ///< the recursive variant)
};

/// \brief Shared per-site stats. One instance per site name, owned by the
/// registry; many mutexes may share a site (e.g. all calibration shards).
class LockSite {
 public:
  // Write order is the inverse of Snapshot()'s read order so a concurrent
  // snapshot always satisfies wait.count <= contended <= acquisitions and
  // hold.count <= acquisitions: each stat is bumped only after the stats
  // that bound it (the release/acquire pair on contended_ and the
  // histogram mutexes carry the visibility).
  void OnAcquire() { acquisitions_.fetch_add(1, std::memory_order_relaxed); }
  void OnContended(double wait_s) {
    contended_.fetch_add(1, std::memory_order_release);
    wait_.Record(wait_s);
  }
  void OnRelease(double hold_s) { hold_.Record(hold_s); }

  LockSiteSnapshot Snapshot() const;  ///< `site` left empty (registry fills it)

 private:
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
  LatencyHistogram wait_;
  LatencyHistogram hold_;
};

/// \brief Process-wide site-name -> LockSite map. Sites are created on
/// first use and live for the process lifetime (references stay valid).
class LockSiteRegistry {
 public:
  static LockSiteRegistry& Instance();

  LockSite& Site(const std::string& name);

  /// Every site's stats, sorted by site name. Cumulative since process
  /// start — consumers diff snapshots for rates.
  std::vector<LockSiteSnapshot> SnapshotAll() const;

 private:
  mutable std::mutex mu_;
  // Node-based: references handed out by Site() survive later inserts.
  std::vector<std::pair<std::string, LockSite*>> sites_;
};

/// True when contention instrumentation is compiled in.
constexpr bool TimedMutexEnabled() {
#ifdef FEDCAL_DISABLE_TIMED_MUTEX
  return false;
#else
  return true;
#endif
}

/// \brief Lockable wrapper over MutexT attributing to a named site.
/// Satisfies the Lockable requirements, so std::lock_guard /
/// std::unique_lock work unchanged.
template <class MutexT>
class BasicTimedMutex {
 public:
  explicit BasicTimedMutex(const char* site)
#ifndef FEDCAL_DISABLE_TIMED_MUTEX
      : site_(&LockSiteRegistry::Instance().Site(site))
#endif
  {
    (void)site;
  }

  BasicTimedMutex(const BasicTimedMutex&) = delete;
  BasicTimedMutex& operator=(const BasicTimedMutex&) = delete;

  void lock() {
#ifdef FEDCAL_DISABLE_TIMED_MUTEX
    mu_.lock();
#else
    if (mu_.try_lock()) {
      Acquired();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    mu_.lock();
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    Acquired();  // before OnContended: keeps contended <= acquisitions
                 // for concurrent snapshots
    site_->OnContended(waited);
#endif
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
#ifndef FEDCAL_DISABLE_TIMED_MUTEX
    Acquired();
#endif
    return true;
  }

  void unlock() {
#ifdef FEDCAL_DISABLE_TIMED_MUTEX
    mu_.unlock();
#else
    // depth_ and acquired_at_ are only touched while holding mu_, so the
    // reads below are race-free; the hold sample is copied out before the
    // release and recorded after it (off the critical path).
    if (--depth_ == 0) {
      const double held =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        acquired_at_)
              .count();
      mu_.unlock();
      site_->OnRelease(held);
      return;
    }
    mu_.unlock();
#endif
  }

 private:
#ifndef FEDCAL_DISABLE_TIMED_MUTEX
  void Acquired() {
    site_->OnAcquire();
    // Outermost acquisition starts the hold timer (depth_ > 1 only for
    // the recursive variant).
    if (++depth_ == 1) acquired_at_ = std::chrono::steady_clock::now();
  }
#endif

  MutexT mu_;
#ifndef FEDCAL_DISABLE_TIMED_MUTEX
  LockSite* site_;
  int depth_ = 0;
  std::chrono::steady_clock::time_point acquired_at_{};
#endif
};

using TimedMutex = BasicTimedMutex<std::mutex>;
using TimedRecursiveMutex = BasicTimedMutex<std::recursive_mutex>;

}  // namespace fedcal::obs
