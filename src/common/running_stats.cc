#include "common/running_stats.h"

#include <cmath>

namespace fedcal {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::coefficient_of_variation() const {
  const double m = mean();
  if (std::abs(m) < 1e-12) return 0.0;
  return stddev() / std::abs(m);
}

void Ewma::Add(double x) {
  if (count_ == 0) {
    value_ = x;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
  ++count_;
}

void Ewma::Reset() {
  value_ = 0.0;
  count_ = 0;
}

void SlidingWindow::Add(double x) {
  window_.push_back(x);
  sum_ += x;
  if (window_.size() > capacity_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
}

void SlidingWindow::Clear() {
  window_.clear();
  sum_ = 0.0;
}

double SlidingWindow::variance() const {
  if (window_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : window_) acc += (v - m) * (v - m);
  return acc / static_cast<double>(window_.size());
}

}  // namespace fedcal
