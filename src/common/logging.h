#pragma once

#include <atomic>
#include <sstream>
#include <string>

#include "common/timed_mutex.h"

namespace fedcal {

/// \brief Severity levels for the fedcal logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Receiver for structured log delivery. Installing a sink turns
/// every FEDCAL_LOG line at or above the sink's level into a callback in
/// addition to (not instead of) the stderr line — the observability layer
/// uses this to convert legacy log call sites into typed events without
/// touching them.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void OnLog(LogLevel level, const std::string& file, int line,
                     const std::string& message) = 0;
};

/// \brief Minimal process-wide logger.
///
/// Log lines go to stderr. The default threshold is kWarn so that library
/// consumers (tests, benches) are quiet unless something is wrong; harness
/// code may lower it for tracing. An installed LogSink has its own
/// threshold, so a sink can observe kInfo traffic while stderr stays
/// quiet.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Routes subsequent Write calls at or above `sink_level` to `sink`
  /// (nullptr uninstalls). The stderr threshold is unaffected.
  ///
  /// Install/uninstall is safe against concurrent emitters: the level is
  /// published before the pointer (and the pointer cleared before the
  /// level on uninstall), so a racing Write either skips the sink or
  /// delivers to a fully-installed one. The sink object itself must
  /// outlive every thread that may emit through it — ScopedLogSink
  /// holders tear down their threads first.
  void SetSink(LogSink* sink, LogLevel sink_level = LogLevel::kInfo) {
    if (sink == nullptr) {
      sink_.store(nullptr, std::memory_order_release);
      sink_level_.store(LogLevel::kOff, std::memory_order_release);
      return;
    }
    sink_level_.store(sink_level, std::memory_order_release);
    sink_.store(sink, std::memory_order_release);
  }
  LogSink* sink() const { return sink_.load(std::memory_order_acquire); }
  LogLevel sink_level() const {
    return sink_level_.load(std::memory_order_acquire);
  }

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level()) ||
           (sink() != nullptr &&
            static_cast<int>(level) >= static_cast<int>(sink_level()));
  }

  void Write(LogLevel level, const std::string& file, int line,
             const std::string& message);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<LogSink*> sink_{nullptr};
  std::atomic<LogLevel> sink_level_{LogLevel::kOff};
  /// Serializes sink delivery (stderr needs no lock; stdio serializes
  /// itself). Taken only when a sink is installed and the level passes,
  /// so plain FEDCAL_LOG traffic stays lock-free. Recursive: a sink (or
  /// the health engine behind it) may log while handling a delivery.
  obs::TimedRecursiveMutex sink_mu_{"logging.sink"};
};

/// \brief Stream-style helper that emits one log line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Logger::Instance().Write(level_, file_, line_, stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace fedcal

#define FEDCAL_LOG(level)                                             \
  if (::fedcal::Logger::Instance().Enabled(::fedcal::LogLevel::level)) \
  ::fedcal::LogMessage(::fedcal::LogLevel::level, __FILE__, __LINE__)

#define FEDCAL_LOG_DEBUG FEDCAL_LOG(kDebug)
#define FEDCAL_LOG_INFO FEDCAL_LOG(kInfo)
#define FEDCAL_LOG_WARN FEDCAL_LOG(kWarn)
#define FEDCAL_LOG_ERROR FEDCAL_LOG(kError)
