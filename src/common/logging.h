#pragma once

#include <sstream>
#include <string>

namespace fedcal {

/// \brief Severity levels for the fedcal logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// \brief Minimal process-wide logger.
///
/// Log lines go to stderr. The default threshold is kWarn so that library
/// consumers (tests, benches) are quiet unless something is wrong; harness
/// code may lower it for tracing.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void Write(LogLevel level, const std::string& file, int line,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
};

/// \brief Stream-style helper that emits one log line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() {
    Logger::Instance().Write(level_, file_, line_, stream_.str());
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace fedcal

#define FEDCAL_LOG(level)                                             \
  if (::fedcal::Logger::Instance().Enabled(::fedcal::LogLevel::level)) \
  ::fedcal::LogMessage(::fedcal::LogLevel::level, __FILE__, __LINE__)

#define FEDCAL_LOG_DEBUG FEDCAL_LOG(kDebug)
#define FEDCAL_LOG_INFO FEDCAL_LOG(kInfo)
#define FEDCAL_LOG_WARN FEDCAL_LOG(kWarn)
#define FEDCAL_LOG_ERROR FEDCAL_LOG(kError)
