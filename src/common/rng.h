#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace fedcal {

/// \brief Deterministic random number generator used by all fedcal
/// components.
///
/// Wraps std::mt19937_64 with the distributions the data generator and the
/// simulators need (uniform, normal, exponential, zipf). Every experiment
/// takes an explicit seed so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// Normal sample (mean, stddev).
  double Normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Exponential sample with the given rate (lambda).
  double Exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(gen_);
  }

  /// Zipf-distributed rank in [1, n] with skew parameter s (s=0 uniform).
  /// Uses rejection-inversion (Hormann/Derflinger style approximation).
  int64_t Zipf(int64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derive an independent child generator (for parallel components).
  Rng Fork() { return Rng(gen_()); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace fedcal
