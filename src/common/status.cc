#include "common/status.h"

namespace fedcal {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  Status copy = *this;
  copy.message_ = context + ": " + message_;
  return copy;
}

}  // namespace fedcal
