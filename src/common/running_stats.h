#pragma once

#include <cstddef>
#include <deque>

namespace fedcal {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by QCC to maintain running averages of estimated and observed
/// fragment costs, and by the calibration-cycle controller to measure
/// volatility (coefficient of variation).
class RunningStats {
 public:
  void Add(double x);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// stddev / |mean|; 0 when mean is ~0.
  double coefficient_of_variation() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Exponentially weighted moving average.
///
/// alpha in (0, 1]; higher alpha weights recent samples more. The first
/// sample initializes the average.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}

  void Add(double x);
  void Reset();

  bool empty() const { return count_ == 0; }
  size_t count() const { return count_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  size_t count_ = 0;
};

/// \brief Fixed-capacity sliding window with O(1) mean queries.
///
/// QCC keeps a bounded history of (estimated, observed) cost pairs per
/// server; the window bounds memory and lets stale samples age out.
class SlidingWindow {
 public:
  explicit SlidingWindow(size_t capacity = 64) : capacity_(capacity) {}

  void Add(double x);
  void Clear();

  size_t size() const { return window_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return window_.empty(); }
  double mean() const { return window_.empty() ? 0.0 : sum_ / window_.size(); }
  double sum() const { return sum_; }
  double latest() const { return window_.empty() ? 0.0 : window_.back(); }
  /// Recomputed on demand (O(n)); used only by diagnostics and tests.
  double variance() const;

  const std::deque<double>& values() const { return window_; }

 private:
  size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

}  // namespace fedcal
