#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace fedcal {

/// \brief Chunked bump allocator for query-lifetime scratch memory.
///
/// The columnar engine allocates its selection vectors and per-batch
/// evaluation scratch from an Arena instead of the heap: one pointer bump
/// per allocation, no per-object frees, everything released at once when
/// the query finishes (or recycled with Reset, which keeps the chunks).
/// Allocations are trivially-destructible POD spans only — the arena never
/// runs destructors.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 1 << 18;  // 256 KiB

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `count` default-initialized elements of a trivially
  /// destructible type, aligned to alignof(T). The span lives until
  /// Reset() or the arena's destruction.
  template <typename T>
  T* Allocate(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return static_cast<T*>(AllocateBytes(count * sizeof(T), alignof(T)));
  }

  /// Raw aligned allocation.
  void* AllocateBytes(size_t bytes, size_t align);

  /// Rewinds every chunk to empty without returning memory to the heap —
  /// the steady-state path between queries reuses warm chunks.
  void Reset();

  size_t bytes_allocated() const { return bytes_allocated_; }
  size_t bytes_reserved() const { return bytes_reserved_; }
  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  Chunk* NewChunk(size_t min_bytes);

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  /// Index of the chunk currently being bumped; chunks below it are full
  /// (or were current before an oversized allocation forced a new chunk).
  size_t current_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace fedcal
