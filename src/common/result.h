#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace fedcal {

/// \brief A value-or-Status holder, the return type of fallible functions
/// that produce a value.
///
/// Usage:
/// \code
///   Result<Table> LoadTable(const std::string& name);
///   FEDCAL_ASSIGN_OR_RETURN(Table t, LoadTable("orders"));
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (failure).
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(state_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// \brief Returns the error status, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// \brief Access the value. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  /// \brief Move the value out. Precondition: ok().
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace fedcal
