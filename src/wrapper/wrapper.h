#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "cost/planner.h"
#include "server/remote_server.h"
#include "sql/parser.h"

namespace fedcal {

/// \brief One execution plan a wrapper offers for a query fragment, with
/// the wrapper's cost estimate (the paper's "query fragments that can be
/// executed at each remote server and their estimated costs").
struct WrapperPlan {
  std::string server_id;
  std::string statement;  ///< fragment SQL as sent to the wrapper
  PlanNodePtr plan;       ///< local physical plan at the remote server
  Schema output_schema;
  double estimated_work = 0.0;   ///< server work units
  double estimated_rows = 0.0;
  double estimated_bytes = 0.0;  ///< estimated result payload
  /// Literal-normalized fingerprint: identical across parameterized
  /// instances of the same fragment shape — QCC's per-fragment signature.
  size_t signature = 0;
  /// Exact structural fingerprint — distinguishes plans even across
  /// replicas with different remote table names.
  size_t identity = 0;
  /// Table-name-agnostic, literal-normalized fingerprint — the §4.1
  /// "identical plans" (exchangeable across replicas) test.
  size_t shape = 0;
};

/// \brief Relational wrapper for one simulated remote server.
///
/// At compile time it parses/binds/plans fragments against the server's
/// local catalog and returns alternative plans with estimated costs. At
/// run time the meta-wrapper submits a chosen plan back through the
/// wrapper for execution (see MetaWrapper).
class RelationalWrapper {
 public:
  explicit RelationalWrapper(RemoteServer* server,
                             PlannerOptions planner_options = {})
      : server_(server),
        planner_(&server->stats(), WorkCosts{}, planner_options) {}

  const std::string& server_id() const { return server_->id(); }
  RemoteServer* server() const { return server_; }

  /// Returns up to `max_alternatives` plans for the fragment, cheapest
  /// first. The fragment's FROM entries must name tables that exist on
  /// this wrapper's server.
  Result<std::vector<WrapperPlan>> PlanFragment(const SelectStmt& fragment,
                                                size_t max_alternatives = 2);

  /// Parses then plans (convenience for tests and probes).
  Result<std::vector<WrapperPlan>> PlanFragmentSql(const std::string& sql,
                                                   size_t max_alternatives = 2);

  /// Re-annotates `wp->plan` against this server's current statistics and
  /// refreshes the plan-derived estimate fields (work/rows/bytes and the
  /// literal-sensitive identity fingerprint). Used by the route phase
  /// after parameter substitution so a cached plan carries the same
  /// estimates a fresh compile of the instance would produce.
  Status Reestimate(WrapperPlan* wp) const;

 private:
  RemoteServer* server_;
  Planner planner_;
};

}  // namespace fedcal
