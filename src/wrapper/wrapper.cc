#include "wrapper/wrapper.h"

#include "common/macros.h"

namespace fedcal {

Result<std::vector<WrapperPlan>> RelationalWrapper::PlanFragment(
    const SelectStmt& fragment, size_t max_alternatives) {
  std::vector<Schema> schemas;
  for (const auto& tr : fragment.from) {
    FEDCAL_ASSIGN_OR_RETURN(TablePtr t, server_->GetTable(tr.table));
    schemas.push_back(t->schema());
  }
  FEDCAL_ASSIGN_OR_RETURN(BoundQuery bq, BindQuery(fragment, schemas));
  FEDCAL_ASSIGN_OR_RETURN(std::vector<PlanNodePtr> plans,
                          planner_.PlanAlternatives(bq, max_alternatives));

  std::vector<WrapperPlan> out;
  out.reserve(plans.size());
  const std::string statement = fragment.ToString();
  for (auto& plan : plans) {
    WrapperPlan wp;
    wp.server_id = server_->id();
    wp.statement = statement;
    wp.output_schema = plan->output_schema;
    wp.estimated_work = plan->estimated_work;
    wp.estimated_rows = plan->estimated_rows;
    // Rough payload estimate: 8 bytes per column plus row overhead mirrors
    // Value::ByteSize for numeric-dominated rows.
    wp.estimated_bytes =
        plan->estimated_rows *
        (8.0 * static_cast<double>(plan->output_schema.num_columns()));
    wp.signature = plan->Fingerprint(/*normalize_literals=*/true);
    wp.identity = plan->Fingerprint(/*normalize_literals=*/false);
    wp.shape = plan->ShapeFingerprint(/*normalize_literals=*/true);
    wp.plan = std::move(plan);
    out.push_back(std::move(wp));
  }
  return out;
}

Result<std::vector<WrapperPlan>> RelationalWrapper::PlanFragmentSql(
    const std::string& sql, size_t max_alternatives) {
  FEDCAL_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  return PlanFragment(stmt, max_alternatives);
}

Status RelationalWrapper::Reestimate(WrapperPlan* wp) const {
  FEDCAL_RETURN_NOT_OK(
      planner_.cost_model().Annotate(wp->plan, server_->stats()));
  wp->estimated_work = wp->plan->estimated_work;
  wp->estimated_rows = wp->plan->estimated_rows;
  wp->estimated_bytes =
      wp->plan->estimated_rows *
      (8.0 * static_cast<double>(wp->output_schema.num_columns()));
  wp->identity = wp->plan->Fingerprint(/*normalize_literals=*/false);
  return Status::OK();
}

}  // namespace fedcal
