#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace fedcal {

/// Simulated time, in seconds since simulation start.
using SimTime = double;

/// \brief Discrete-event simulation kernel with a virtual clock.
///
/// Every component of the federated testbed (servers, network, daemons,
/// workload driver) advances through this single event queue, so
/// experiments are deterministic and run orders of magnitude faster than
/// wall-clock. Events scheduled for the same instant fire in scheduling
/// order (stable tie-break on a sequence number).
class Simulator {
 public:
  using EventId = uint64_t;
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedule `cb` to run `delay` seconds from now (delay clamped to >= 0).
  /// Returns an id usable with Cancel().
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Schedule `cb` at absolute virtual time `when` (clamped to >= Now()).
  EventId ScheduleAt(SimTime when, Callback cb);

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. Cancellation is lazy: the entry stays queued but is
  /// skipped — except that once cancelled entries outnumber live ones the
  /// queue is compacted, so a long-lived simulator whose far-future
  /// timers keep getting cancelled (deadlines, hedges) and whose runs
  /// stop early (RunUntil) cannot accumulate dead entries forever.
  bool Cancel(EventId id);

  /// Run until the queue drains. Returns the number of events fired.
  size_t Run();

  /// Run events with time <= t, then set the clock to t (if it advanced
  /// past the last fired event). Returns the number of events fired.
  size_t RunUntil(SimTime t);

  /// Fire at most one event. Returns false if the queue is empty.
  bool Step();

  size_t pending_events() const { return live_.size(); }
  size_t fired_events() const { return fired_; }
  /// Cancelled entries still sitting in the queue (bounded by the live
  /// count plus a small constant thanks to compaction).
  size_t cancelled_backlog() const { return cancelled_.size(); }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    Callback cb;
  };

  /// Rebuilds the queue without cancelled entries. Safe to call from
  /// inside a firing callback: Step() holds the current entry by value.
  void Compact();
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;  ///< queued and not yet cancelled
};

/// \brief A repeating timer built on Simulator, used by QCC daemons
/// (availability probes, recalibration cycles, catalog refresh).
///
/// The period may be changed between firings; the change takes effect when
/// the next tick is scheduled. Stop() prevents further firings.
class PeriodicTask {
 public:
  /// `task` runs every `period` seconds, first firing after `initial_delay`.
  PeriodicTask(Simulator* sim, SimTime period, Simulator::Callback task,
               SimTime initial_delay = 0.0);

  void Start();
  void Stop();
  bool running() const { return running_; }

  SimTime period() const { return period_; }
  /// Adjust the interval for subsequent firings (clamped to > 0).
  void set_period(SimTime period);

  size_t firings() const { return firings_; }

 private:
  void Tick();

  Simulator* sim_;
  SimTime period_;
  SimTime initial_delay_;
  Simulator::Callback task_;
  bool running_ = false;
  size_t firings_ = 0;
  Simulator::EventId pending_ = 0;
};

}  // namespace fedcal
