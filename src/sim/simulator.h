#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/clock.h"

namespace fedcal {

/// \brief Discrete-event simulation kernel with a virtual clock — the
/// `ExecutionContext` every experiment runs on by default, and the
/// deterministic oracle the serving runtime is differentially tested
/// against.
///
/// Every component of the federated testbed (servers, network, daemons,
/// workload driver) advances through this single event queue, so
/// experiments are deterministic and run orders of magnitude faster than
/// wall-clock. Events scheduled for the same instant fire in scheduling
/// order (stable tie-break on a sequence number).
class Simulator final : public ExecutionContext {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime Now() const override { return now_; }

  /// Schedule `cb` at absolute virtual time `when` (clamped to >= Now()).
  EventId ScheduleAt(SimTime when, Callback cb) override;

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled. Cancellation is lazy: the entry stays queued but is
  /// skipped — except that once cancelled entries outnumber live ones the
  /// queue is compacted, so a long-lived simulator whose far-future
  /// timers keep getting cancelled (deadlines, hedges) and whose runs
  /// stop early (RunUntil) cannot accumulate dead entries forever.
  bool Cancel(EventId id) override;

  ExecMode mode() const override { return ExecMode::kSimulation; }

  /// Steps the event loop until `pred()` holds, giving up when the queue
  /// drains first.
  void AwaitCondition(const std::function<bool()>& pred) override {
    while (!pred() && Step()) {
    }
  }

  /// Run until the queue drains. Returns the number of events fired.
  size_t Run();

  /// Run events with time <= t, then set the clock to t (if it advanced
  /// past the last fired event). Returns the number of events fired.
  size_t RunUntil(SimTime t);

  /// Fire at most one event. Returns false if the queue is empty.
  bool Step();

  size_t pending_events() const { return live_.size(); }
  size_t fired_events() const { return fired_; }
  /// Cancelled entries still sitting in the queue (bounded by the live
  /// count plus a small constant thanks to compaction).
  size_t cancelled_backlog() const { return cancelled_.size(); }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    Callback cb;
  };

  /// Rebuilds the queue without cancelled entries. Safe to call from
  /// inside a firing callback: Step() holds the current entry by value.
  void Compact();
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;  ///< queued and not yet cancelled
};

}  // namespace fedcal
