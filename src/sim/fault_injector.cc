#include "sim/fault_injector.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace fedcal {

namespace {

const char* KindVerb(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRecover:
      return "recover";
    case FaultEvent::Kind::kBrownout:
      return "brownout";
    case FaultEvent::Kind::kErrorBurst:
      return "errors";
    case FaultEvent::Kind::kCongestion:
      return "congest";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kOutage:
      return "outage";
  }
  return "?";
}

bool ParseNumber(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && end != token.c_str();
}

}  // namespace

std::string FaultEvent::Describe() const {
  std::string s = StringFormat("at %g %s %s", at, KindVerb(kind),
                               target.c_str());
  switch (kind) {
    case Kind::kBrownout:
    case Kind::kErrorBurst:
      s += StringFormat(" %g", magnitude);
      break;
    case Kind::kCongestion:
      s += StringFormat(" %g %g", magnitude, bandwidth_divisor);
      break;
    default:
      break;
  }
  if (duration_s > 0.0) s += StringFormat(" for %g", duration_s);
  return s;
}

FaultSchedule& FaultSchedule::Crash(SimTime at, std::string server,
                                    double duration_s) {
  events.push_back(FaultEvent{FaultEvent::Kind::kCrash, at, duration_s,
                              std::move(server), 0.0, 1.0});
  return *this;
}

FaultSchedule& FaultSchedule::Recover(SimTime at, std::string server) {
  events.push_back(FaultEvent{FaultEvent::Kind::kRecover, at, 0.0,
                              std::move(server), 0.0, 1.0});
  return *this;
}

FaultSchedule& FaultSchedule::Brownout(SimTime at, std::string server,
                                       double load, double duration_s) {
  events.push_back(FaultEvent{FaultEvent::Kind::kBrownout, at, duration_s,
                              std::move(server), load, 1.0});
  return *this;
}

FaultSchedule& FaultSchedule::ErrorBurst(SimTime at, std::string server,
                                         double rate, double duration_s) {
  events.push_back(FaultEvent{FaultEvent::Kind::kErrorBurst, at, duration_s,
                              std::move(server), rate, 1.0});
  return *this;
}

FaultSchedule& FaultSchedule::Congestion(SimTime at, std::string link,
                                         double latency_multiplier,
                                         double bandwidth_divisor,
                                         double duration_s) {
  events.push_back(FaultEvent{FaultEvent::Kind::kCongestion, at, duration_s,
                              std::move(link), latency_multiplier,
                              bandwidth_divisor});
  return *this;
}

FaultSchedule& FaultSchedule::Partition(SimTime at, std::string link,
                                        double duration_s) {
  events.push_back(FaultEvent{FaultEvent::Kind::kPartition, at, duration_s,
                              std::move(link),
                              FaultInjector::kPartitionSeverity,
                              FaultInjector::kPartitionSeverity});
  return *this;
}

FaultSchedule& FaultSchedule::Outage(SimTime at, std::string server,
                                     double duration_s) {
  events.push_back(FaultEvent{FaultEvent::Kind::kOutage, at, duration_s,
                              std::move(server), 0.0, 1.0});
  return *this;
}

Result<FaultSchedule> FaultSchedule::Parse(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream in(line);
    std::vector<std::string> tok;
    for (std::string t; in >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;

    auto fail = [&](const std::string& why) {
      return Status::ParseError(StringFormat(
          "fault schedule line %zu: %s", line_no, why.c_str()));
    };
    if (tok.size() < 4 || tok[0] != "at") {
      return fail("expected 'at <time> <verb> <target> ...'");
    }
    double at = 0.0;
    if (!ParseNumber(tok[1], &at) || at < 0.0) {
      return fail("bad time '" + tok[1] + "'");
    }
    const std::string& verb = tok[2];
    const std::string& target = tok[3];
    size_t next = 4;

    // Verb-specific positional magnitudes.
    auto need_number = [&](const char* what, double* out) -> Status {
      if (next >= tok.size() || !ParseNumber(tok[next], out)) {
        return fail(std::string("expected ") + what);
      }
      ++next;
      return Status::OK();
    };

    FaultEvent ev;
    ev.at = at;
    ev.target = target;
    if (verb == "crash") {
      ev.kind = FaultEvent::Kind::kCrash;
    } else if (verb == "recover") {
      ev.kind = FaultEvent::Kind::kRecover;
    } else if (verb == "brownout") {
      ev.kind = FaultEvent::Kind::kBrownout;
      if (Status st = need_number("a load in [0,1)", &ev.magnitude);
          !st.ok()) {
        return st;
      }
    } else if (verb == "errors") {
      ev.kind = FaultEvent::Kind::kErrorBurst;
      if (Status st = need_number("an error rate", &ev.magnitude); !st.ok()) {
        return st;
      }
    } else if (verb == "congest") {
      ev.kind = FaultEvent::Kind::kCongestion;
      if (Status st = need_number("a latency multiplier", &ev.magnitude);
          !st.ok()) {
        return st;
      }
      if (Status st =
              need_number("a bandwidth divisor", &ev.bandwidth_divisor);
          !st.ok()) {
        return st;
      }
    } else if (verb == "partition") {
      ev.kind = FaultEvent::Kind::kPartition;
      ev.magnitude = FaultInjector::kPartitionSeverity;
      ev.bandwidth_divisor = FaultInjector::kPartitionSeverity;
    } else if (verb == "outage") {
      ev.kind = FaultEvent::Kind::kOutage;
    } else {
      return fail("unknown fault verb '" + verb + "'");
    }

    if (next < tok.size()) {
      if (tok[next] != "for" || next + 1 >= tok.size() ||
          !ParseNumber(tok[next + 1], &ev.duration_s) ||
          ev.duration_s <= 0.0) {
        return fail("trailing tokens; expected 'for <duration>'");
      }
      next += 2;
    }
    if (next != tok.size()) return fail("unexpected trailing tokens");
    schedule.events.push_back(std::move(ev));
  }
  return schedule;
}

std::string FaultSchedule::ToString() const {
  std::string out;
  for (const auto& ev : events) {
    out += ev.Describe();
    out += '\n';
  }
  return out;
}

void FaultInjector::RegisterServer(const std::string& id, ServerHooks hooks) {
  servers_[id] = std::move(hooks);
}

void FaultInjector::RegisterLink(const std::string& id, LinkHooks hooks) {
  links_[id] = std::move(hooks);
}

Status FaultInjector::Arm(const FaultSchedule& schedule) {
  for (const auto& ev : schedule.events) {
    const bool is_link_fault = ev.kind == FaultEvent::Kind::kCongestion ||
                               ev.kind == FaultEvent::Kind::kPartition;
    if (is_link_fault) {
      if (!links_.count(ev.target)) {
        return Status::NotFound("fault schedule targets unregistered link " +
                                ev.target);
      }
    } else if (!servers_.count(ev.target)) {
      return Status::NotFound("fault schedule targets unregistered server " +
                              ev.target);
    }
  }
  for (const auto& ev : schedule.events) {
    sim_->ScheduleAt(ev.at, [this, ev] { Apply(ev); });
    ++armed_;
  }
  return Status::OK();
}

void FaultInjector::Apply(const FaultEvent& event) {
  ++applied_;
  log_.push_back(StringFormat("t=%.3f: %s", sim_->Now(),
                              event.Describe().c_str()));
  FEDCAL_LOG_INFO << "fault injector: " << log_.back();
  if (event_hook_) event_hook_(event, /*reverting=*/false);
  auto notify_revert = [this, event] {
    if (event_hook_) event_hook_(event, /*reverting=*/true);
  };

  switch (event.kind) {
    case FaultEvent::Kind::kCrash: {
      ServerHooks& s = servers_.at(event.target);
      s.set_available(false);
      if (event.duration_s > 0.0) {
        sim_->ScheduleAfter(event.duration_s, [&s, notify_revert] {
          s.set_available(true);
          notify_revert();
        });
      }
      break;
    }
    case FaultEvent::Kind::kOutage: {
      // Order matters: go unavailable first so the aborted fragments'
      // failure deliveries cannot be raced by a resubmission landing on a
      // still-"up" server.
      ServerHooks& s = servers_.at(event.target);
      s.set_available(false);
      if (s.abort_inflight) s.abort_inflight();
      if (event.duration_s > 0.0) {
        sim_->ScheduleAfter(event.duration_s, [&s, notify_revert] {
          s.set_available(true);
          notify_revert();
        });
      }
      break;
    }
    case FaultEvent::Kind::kRecover:
      servers_.at(event.target).set_available(true);
      break;
    case FaultEvent::Kind::kBrownout: {
      ServerHooks& s = servers_.at(event.target);
      const double previous = s.background_load();
      s.set_background_load(event.magnitude);
      if (event.duration_s > 0.0) {
        sim_->ScheduleAfter(event.duration_s, [&s, previous, notify_revert] {
          s.set_background_load(previous);
          notify_revert();
        });
      }
      break;
    }
    case FaultEvent::Kind::kErrorBurst: {
      ServerHooks& s = servers_.at(event.target);
      const double previous = s.error_rate();
      s.set_error_rate(event.magnitude);
      if (event.duration_s > 0.0) {
        sim_->ScheduleAfter(event.duration_s, [&s, previous, notify_revert] {
          s.set_error_rate(previous);
          notify_revert();
        });
      }
      break;
    }
    case FaultEvent::Kind::kCongestion:
    case FaultEvent::Kind::kPartition: {
      // Congestion is interval data, not a settable knob: hand the link an
      // episode covering [now, now + duration) (effectively unbounded when
      // the event is permanent). The revert notification mirrors the
      // episode's end so operators see timed congestion clear.
      const SimTime start = sim_->Now();
      const SimTime end =
          event.duration_s > 0.0 ? start + event.duration_s : 1e18;
      links_.at(event.target)
          .add_congestion(start, end, event.magnitude,
                          event.bandwidth_divisor);
      if (event.duration_s > 0.0 && event_hook_) {
        sim_->ScheduleAfter(event.duration_s, notify_revert);
      }
      break;
    }
  }
}

}  // namespace fedcal
