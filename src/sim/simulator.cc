#include "sim/simulator.h"

#include <cassert>

namespace fedcal {

Simulator::EventId Simulator::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id, std::move(cb)});
  live_.insert(id);
  return id;
}

bool Simulator::Cancel(EventId id) {
  // Only a still-pending event can be cancelled; ids that already fired
  // or were cancelled are rejected.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  // Lazy cancellation leaks when a cancelled entry is never popped (a
  // RunUntil that stops early, a drained run that leaves far-future
  // timers queued). Compact once dead entries dominate the queue.
  if (cancelled_.size() > 64 && cancelled_.size() > live_.size()) {
    Compact();
  }
  return true;
}

void Simulator::Compact() {
  std::vector<Entry> kept;
  kept.reserve(live_.size());
  while (!queue_.empty()) {
    // priority_queue exposes only const top(); the move is safe because
    // the element is popped immediately after.
    kept.push_back(std::move(const_cast<Entry&>(queue_.top())));
    queue_.pop();
  }
  for (auto& e : kept) {
    if (live_.count(e.id) != 0) queue_.push(std::move(e));
  }
  cancelled_.clear();
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(e.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(e.id);
    assert(e.when >= now_);
    now_ = e.when;
    ++fired_;
    e.cb();
    return true;
  }
  return false;
}

size_t Simulator::Run() {
  size_t n = 0;
  while (Step()) ++n;
  return n;
}

size_t Simulator::RunUntil(SimTime t) {
  size_t n = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.count(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.when > t) break;
    Step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace fedcal
