#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/clock.h"

namespace fedcal {

/// \brief One timed fault: what happens, to whom, when, for how long.
struct FaultEvent {
  enum class Kind {
    kCrash,      ///< server rejects everything (SetAvailable(false))
    kRecover,    ///< server answers again (SetAvailable(true))
    kBrownout,   ///< fail-slow: background load raised, no errors reported
    kErrorBurst, ///< transient-error probability raised
    kCongestion, ///< link latency multiplied / bandwidth divided
    kPartition,  ///< link effectively severed (extreme congestion)
    kOutage,     ///< hard crash: also aborts queued and *running* fragments
                 ///< (kCrash lets running work finish — a graceful drain)
  };

  Kind kind = Kind::kCrash;
  SimTime at = 0.0;
  /// 0 = permanent (until a later event reverts it); otherwise the fault
  /// auto-reverts `duration_s` seconds after `at`.
  double duration_s = 0.0;
  std::string target;  ///< server id (or link id for network faults)
  /// Brownout: background load in [0,1). Error burst: error probability.
  /// Congestion: latency multiplier.
  double magnitude = 0.0;
  double bandwidth_divisor = 1.0;  ///< congestion only

  std::string Describe() const;
};

/// \brief A reproducible chaos scenario: an ordered list of fault events.
///
/// Build programmatically with the fluent helpers or parse from the
/// line-oriented text format (one event per line, `#` comments):
///
///     at <time> crash <server> [for <duration>]
///     at <time> recover <server>
///     at <time> brownout <server> <load> [for <duration>]
///     at <time> errors <server> <rate> [for <duration>]
///     at <time> congest <link> <latency_mult> <bandwidth_div> [for <dur>]
///     at <time> partition <link> [for <duration>]
///     at <time> outage <server> [for <duration>]
struct FaultSchedule {
  std::vector<FaultEvent> events;

  FaultSchedule& Crash(SimTime at, std::string server,
                       double duration_s = 0.0);
  FaultSchedule& Recover(SimTime at, std::string server);
  FaultSchedule& Brownout(SimTime at, std::string server, double load,
                          double duration_s = 0.0);
  FaultSchedule& ErrorBurst(SimTime at, std::string server, double rate,
                            double duration_s = 0.0);
  FaultSchedule& Congestion(SimTime at, std::string link,
                            double latency_multiplier,
                            double bandwidth_divisor,
                            double duration_s = 0.0);
  FaultSchedule& Partition(SimTime at, std::string link,
                           double duration_s = 0.0);
  FaultSchedule& Outage(SimTime at, std::string server,
                        double duration_s = 0.0);

  static Result<FaultSchedule> Parse(const std::string& text);
  std::string ToString() const;
};

/// \brief Applies a FaultSchedule through the simulator clock.
///
/// The injector never touches servers or links directly — callers register
/// per-target hook bundles (Scenario wires every RemoteServer and
/// NetworkLink automatically), which keeps this module free of
/// server/network dependencies and lets tests inject against fakes.
class FaultInjector {
 public:
  struct ServerHooks {
    std::function<void(bool)> set_available;
    std::function<void(double)> set_background_load;
    std::function<double()> background_load;
    std::function<void(double)> set_error_rate;
    std::function<double()> error_rate;
    /// Fails queued and running fragments (kOutage). Optional: when unset,
    /// an outage degrades to kCrash semantics.
    std::function<void()> abort_inflight;
  };
  struct LinkHooks {
    /// Adds a congestion episode [start, end) with the given multipliers.
    std::function<void(SimTime start, SimTime end, double latency_multiplier,
                       double bandwidth_divisor)>
        add_congestion;
  };

  /// Latency multiplier / bandwidth divisor used to model a partition.
  static constexpr double kPartitionSeverity = 1e9;

  explicit FaultInjector(ExecutionContext* sim) : sim_(sim) {}

  void RegisterServer(const std::string& id, ServerHooks hooks);
  void RegisterLink(const std::string& id, LinkHooks hooks);

  /// Observes every applied event and every timed auto-revert. The sim
  /// layer cannot depend on the observability layer, so this is a generic
  /// callback; Scenario wires it into the structured event log.
  using EventHook = std::function<void(const FaultEvent& event,
                                       bool reverting)>;
  void SetEventHook(EventHook hook) { event_hook_ = std::move(hook); }

  /// Validates every event's target and schedules the whole script on the
  /// simulator. May be called multiple times (schedules compose).
  Status Arm(const FaultSchedule& schedule);

  size_t armed_events() const { return armed_; }
  size_t applied_events() const { return applied_; }
  /// Human-readable "t=...: <event>" lines, in application order.
  const std::vector<std::string>& log() const { return log_; }

 private:
  void Apply(const FaultEvent& event);

  ExecutionContext* sim_;
  std::map<std::string, ServerHooks> servers_;
  std::map<std::string, LinkHooks> links_;
  EventHook event_hook_;
  size_t armed_ = 0;
  size_t applied_ = 0;
  std::vector<std::string> log_;
};

}  // namespace fedcal
