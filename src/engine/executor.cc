#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/columnar_executor.h"
#include "engine/exec_common.h"

namespace fedcal {

Status Executor::CheckSize(size_t rows) const {
  if (config_.max_intermediate_rows > 0 &&
      rows > config_.max_intermediate_rows) {
    return Status::ExecutionError(StringFormat(
        "intermediate result exceeds limit (%zu > %zu rows)", rows,
        config_.max_intermediate_rows));
  }
  return Status::OK();
}

Result<TablePtr> Executor::Execute(const PlanNodePtr& plan,
                                   ExecStats* stats) const {
  return Execute(plan, stats, nullptr);
}

Result<TablePtr> Executor::Execute(
    const PlanNodePtr& plan, ExecStats* stats,
    std::shared_ptr<obs::OperatorProfile>* profile_out) const {
  if (profile_out != nullptr) profile_out->reset();
  if (!plan) return Status::InvalidArgument("null plan");
  const bool profiling = config_.profile && profile_out != nullptr;
  if (config_.engine == EngineKind::kColumnar) {
    ColumnarExecutor columnar(resolver_, config_);
    return columnar.Execute(plan, stats, profiling ? profile_out : nullptr);
  }
  ExecStats local;
  obs::OperatorProfile root;
  FEDCAL_ASSIGN_OR_RETURN(
      TablePtr result,
      ExecuteNode(*plan, &local, profiling ? &root : nullptr));
  local.rows_output = result->num_rows();
  local.bytes_output = result->byte_size();
  if (stats) stats->Merge(local);
  if (profiling && !root.children.empty()) {
    *profile_out = root.children.front();
  }
  return result;
}

Result<TablePtr> Executor::ExecuteNode(const PlanNode& node, ExecStats* stats,
                                       obs::OperatorProfile* parent) const {
  ++stats->operators_executed;
  if (parent == nullptr) return DispatchNode(node, stats, nullptr);
  OperatorProfileScope scope(node, *stats);
  FEDCAL_ASSIGN_OR_RETURN(TablePtr result,
                          DispatchNode(node, stats, scope.prof()));
  // The row engine materializes each operator's output in one batch.
  scope.Finish(*stats, result->num_rows(), /*batches=*/1, /*arena_bytes=*/0,
               parent);
  return result;
}

Result<TablePtr> Executor::DispatchNode(const PlanNode& node, ExecStats* stats,
                                        obs::OperatorProfile* prof) const {
  switch (node.kind) {
    case PlanKind::kScan:
      return ExecScan(node, stats);
    case PlanKind::kIndexScan:
      return ExecIndexScan(node, stats);
    case PlanKind::kFilter:
      return ExecFilter(node, stats, prof);
    case PlanKind::kProject:
      return ExecProject(node, stats, prof);
    case PlanKind::kHashJoin:
      return ExecHashJoin(node, stats, prof);
    case PlanKind::kNestedLoopJoin:
      return ExecNestedLoopJoin(node, stats, prof);
    case PlanKind::kAggregate:
      return ExecAggregate(node, stats, prof);
    case PlanKind::kSort:
      return ExecSort(node, stats, prof);
    case PlanKind::kDistinct:
      return ExecDistinct(node, stats, prof);
    case PlanKind::kLimit:
      return ExecLimit(node, stats, prof);
  }
  return Status::Internal("unhandled plan kind");
}

Result<TablePtr> Executor::ExecScan(const PlanNode& node,
                                    ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(node.table_name));
  stats->rows_scanned += table->num_rows();
  // The whole scan charge (row touch + bytes read) is I/O work.
  const double io = config_.costs.scan_row * table->num_rows() +
                    config_.costs.scan_byte * table->byte_size();
  stats->work_units += io;
  stats->io_units += io;
  return table;
}

Result<TablePtr> Executor::ExecIndexScan(const PlanNode& node,
                                          ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(node.table_name));
  const HashIndex* index = table->GetIndex(node.index_column);
  if (index == nullptr) {
    return Status::ExecutionError("table " + node.table_name +
                                  " has no index on " + node.index_column);
  }
  Row empty;
  FEDCAL_ASSIGN_OR_RETURN(Value key, node.index_value->Eval(empty));
  auto out = std::make_shared<Table>("", node.output_schema);
  double io = config_.costs.index_probe;
  for (size_t row_id : index->Probe(key)) {
    if (row_id >= table->num_rows()) continue;
    const Row& row = table->row(row_id);
    // Verify exact equality (the index probe is hash-based).
    if (row[index->column_index()].is_null() ||
        row[index->column_index()].Compare(key) != 0) {
      continue;
    }
    io += config_.costs.index_match_row;
    out->AppendRowUnchecked(row);
  }
  stats->rows_scanned += out->num_rows();
  stats->work_units += io;
  stats->io_units += io;
  return out;
}

Result<TablePtr> Executor::ExecFilter(const PlanNode& node, ExecStats* stats,
                                      obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats, prof));
  auto out = std::make_shared<Table>("", node.output_schema);
  stats->work_units +=
      config_.costs.filter_row * static_cast<double>(in->num_rows());
  for (const Row& row : in->rows()) {
    FEDCAL_ASSIGN_OR_RETURN(Value v, node.predicate->Eval(row));
    if (IsTruthy(v)) out->AppendRowUnchecked(row);
  }
  return out;
}

Result<TablePtr> Executor::ExecProject(const PlanNode& node, ExecStats* stats,
                                       obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats, prof));
  auto out = std::make_shared<Table>("", node.output_schema);
  out->Reserve(in->num_rows());
  stats->work_units += config_.costs.project_expr *
                       static_cast<double>(in->num_rows()) *
                       static_cast<double>(node.projections.size());
  for (const Row& row : in->rows()) {
    Row projected;
    projected.reserve(node.projections.size());
    for (const auto& e : node.projections) {
      FEDCAL_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      projected.push_back(std::move(v));
    }
    out->AppendRowUnchecked(std::move(projected));
  }
  return out;
}

Result<TablePtr> Executor::ExecHashJoin(const PlanNode& node, ExecStats* stats,
                                        obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr build,
                          ExecuteNode(*node.left, stats, prof));
  FEDCAL_ASSIGN_OR_RETURN(TablePtr probe,
                          ExecuteNode(*node.right, stats, prof));

  auto extract_keys = [](const Row& row, const std::vector<size_t>& slots) {
    Row key;
    key.reserve(slots.size());
    for (size_t s : slots) key.push_back(row[s]);
    return key;
  };

  // Build-side rows group under their key in ascending row order, so a
  // probe row with several matches emits them deterministically (the
  // columnar engine reproduces the same order; unordered_multimap's
  // equal_range order is implementation-defined).
  std::unordered_map<RowKey, std::vector<size_t>, RowKeyHash> table;
  table.reserve(build->num_rows());
  for (size_t i = 0; i < build->num_rows(); ++i) {
    Row key = extract_keys(build->row(i), node.left_keys);
    // NULL join keys never match; skip them at build time.
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (has_null) continue;
    table[RowKey(std::move(key))].push_back(i);
  }
  stats->work_units +=
      config_.costs.hash_build_row * static_cast<double>(build->num_rows());

  auto out = std::make_shared<Table>("", node.output_schema);
  stats->work_units +=
      config_.costs.hash_probe_row * static_cast<double>(probe->num_rows());
  for (const Row& probe_row : probe->rows()) {
    Row key = extract_keys(probe_row, node.right_keys);
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (has_null) continue;
    auto it = table.find(RowKey(std::move(key)));
    if (it == table.end()) continue;
    for (size_t build_idx : it->second) {
      const Row& build_row = build->row(build_idx);
      Row joined;
      joined.reserve(build_row.size() + probe_row.size());
      joined.insert(joined.end(), build_row.begin(), build_row.end());
      joined.insert(joined.end(), probe_row.begin(), probe_row.end());
      if (node.residual) {
        FEDCAL_ASSIGN_OR_RETURN(Value v, node.residual->Eval(joined));
        if (!IsTruthy(v)) continue;
      }
      stats->work_units += config_.costs.join_output_row;
      out->AppendRowUnchecked(std::move(joined));
      FEDCAL_RETURN_NOT_OK(CheckSize(out->num_rows()));
    }
  }
  return out;
}

Result<TablePtr> Executor::ExecNestedLoopJoin(
    const PlanNode& node, ExecStats* stats,
    obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr left,
                          ExecuteNode(*node.left, stats, prof));
  FEDCAL_ASSIGN_OR_RETURN(TablePtr right,
                          ExecuteNode(*node.right, stats, prof));
  auto out = std::make_shared<Table>("", node.output_schema);
  stats->work_units += config_.costs.nlj_pair *
                       static_cast<double>(left->num_rows()) *
                       static_cast<double>(right->num_rows());
  for (const Row& l : left->rows()) {
    for (const Row& r : right->rows()) {
      Row joined;
      joined.reserve(l.size() + r.size());
      joined.insert(joined.end(), l.begin(), l.end());
      joined.insert(joined.end(), r.begin(), r.end());
      if (node.predicate) {
        FEDCAL_ASSIGN_OR_RETURN(Value v, node.predicate->Eval(joined));
        if (!IsTruthy(v)) continue;
      }
      stats->work_units += config_.costs.join_output_row;
      out->AppendRowUnchecked(std::move(joined));
      FEDCAL_RETURN_NOT_OK(CheckSize(out->num_rows()));
    }
  }
  return out;
}

Result<TablePtr> Executor::ExecAggregate(const PlanNode& node,
                                         ExecStats* stats,
                                         obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats, prof));

  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  // Groups emit in first-seen order (deterministic and engine-invariant,
  // unlike unordered_map iteration order).
  std::vector<Group> groups;
  std::unordered_map<RowKey, size_t, RowKeyHash> group_index;

  stats->work_units +=
      config_.costs.agg_update_row * static_cast<double>(in->num_rows());
  for (const Row& row : in->rows()) {
    Row key;
    key.reserve(node.group_by.size());
    for (const auto& g : node.group_by) {
      FEDCAL_ASSIGN_OR_RETURN(Value v, g->Eval(row));
      key.push_back(std::move(v));
    }
    RowKey rk(key);
    auto [it, inserted] = group_index.emplace(std::move(rk), groups.size());
    if (inserted) {
      Group grp;
      grp.key = std::move(key);
      grp.states.resize(node.aggs.size());
      groups.push_back(std::move(grp));
    }
    Group& grp = groups[it->second];
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      const AggItem& item = node.aggs[a];
      if (item.count_star) {
        grp.states[a].Update(item, Value());
      } else {
        FEDCAL_ASSIGN_OR_RETURN(Value v, item.arg->Eval(row));
        grp.states[a].Update(item, v);
      }
    }
  }

  auto out = std::make_shared<Table>("", node.output_schema);
  // Global aggregation over empty input still yields one row.
  if (groups.empty() && node.group_by.empty()) {
    Row row;
    for (const AggItem& item : node.aggs) {
      row.push_back(AggState().Finalize(item));
    }
    out->AppendRowUnchecked(std::move(row));
    stats->work_units += config_.costs.agg_group;
    return out;
  }
  stats->work_units +=
      config_.costs.agg_group * static_cast<double>(groups.size());
  out->Reserve(groups.size());
  for (Group& grp : groups) {
    Row row = std::move(grp.key);
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      row.push_back(grp.states[a].Finalize(node.aggs[a]));
    }
    out->AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<TablePtr> Executor::ExecSort(const PlanNode& node, ExecStats* stats,
                                    obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats, prof));
  const size_t n = in->num_rows();
  stats->work_units +=
      config_.costs.sort_row_log * static_cast<double>(n) * Log2Rows(n);

  // Precompute sort keys per row, then stable-sort indices.
  std::vector<Row> keys;
  keys.reserve(n);
  for (const Row& row : in->rows()) {
    Row key;
    key.reserve(node.sort_keys.size());
    for (const auto& [e, desc] : node.sort_keys) {
      FEDCAL_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      Unused(desc);
      key.push_back(std::move(v));
    }
    keys.push_back(std::move(key));
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < node.sort_keys.size(); ++k) {
      const int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return node.sort_keys[k].second ? c > 0 : c < 0;
    }
    return false;
  });

  auto out = std::make_shared<Table>("", node.output_schema);
  out->Reserve(n);
  for (size_t i : order) out->AppendRowUnchecked(in->row(i));
  return out;
}

Result<TablePtr> Executor::ExecDistinct(const PlanNode& node, ExecStats* stats,
                                        obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats, prof));
  stats->work_units +=
      config_.costs.distinct_row * static_cast<double>(in->num_rows());
  std::unordered_map<RowKey, bool, RowKeyHash> seen;
  seen.reserve(in->num_rows());
  auto out = std::make_shared<Table>("", node.output_schema);
  for (const Row& row : in->rows()) {
    RowKey rk(row);
    if (seen.emplace(std::move(rk), true).second) {
      out->AppendRowUnchecked(row);
    }
  }
  return out;
}

Result<TablePtr> Executor::ExecLimit(const PlanNode& node, ExecStats* stats,
                                     obs::OperatorProfile* prof) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats, prof));
  auto out = std::make_shared<Table>("", node.output_schema);
  const size_t n = std::min<size_t>(
      in->num_rows(),
      node.limit < 0 ? 0 : static_cast<size_t>(node.limit));
  out->Reserve(n);
  for (size_t i = 0; i < n; ++i) out->AppendRowUnchecked(in->row(i));
  return out;
}

}  // namespace fedcal
