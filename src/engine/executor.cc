#include "engine/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"

namespace fedcal {

namespace {

double Log2Rows(size_t n) {
  return n < 2 ? 1.0 : std::log2(static_cast<double>(n));
}

/// Hash-map key wrapper so Rows can key unordered_map.
struct RowKey {
  Row values;
  size_t hash;

  explicit RowKey(Row v) : values(std::move(v)), hash(HashRow(values)) {}
  bool operator==(const RowKey& o) const {
    if (hash != o.hash || values.size() != o.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool ln = values[i].is_null();
      const bool rn = o.values[i].is_null();
      if (ln != rn) return false;
      if (!ln && values[i].Compare(o.values[i]) != 0) return false;
    }
    return true;
  }
};
struct RowKeyHash {
  size_t operator()(const RowKey& k) const { return k.hash; }
};

/// Accumulator for one aggregate function instance in one group.
struct AggState {
  size_t count = 0;        // non-null inputs (or all rows for COUNT(*))
  bool int_mode = true;    // SUM stays integral until a double arrives
  int64_t isum = 0;
  double dsum = 0.0;
  Value min_v;
  Value max_v;

  void Update(const AggItem& item, const Value& v) {
    if (item.count_star) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    switch (item.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.is_int64() && int_mode) {
          isum += v.AsInt64();
        } else {
          if (int_mode) {
            dsum = static_cast<double>(isum);
            int_mode = false;
          }
          dsum += v.AsDouble();
        }
        break;
      case AggFunc::kMin:
        if (min_v.is_null() || v < min_v) min_v = v;
        break;
      case AggFunc::kMax:
        if (max_v.is_null() || max_v < v) max_v = v;
        break;
    }
  }

  Value Finalize(const AggItem& item) const {
    switch (item.func) {
      case AggFunc::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFunc::kSum:
        if (count == 0) return Value::Null_();
        if (int_mode && item.result_type == DataType::kInt64) {
          return Value(isum);
        }
        return Value(int_mode ? static_cast<double>(isum) : dsum);
      case AggFunc::kAvg: {
        if (count == 0) return Value::Null_();
        const double total = int_mode ? static_cast<double>(isum) : dsum;
        return Value(total / static_cast<double>(count));
      }
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
    }
    return Value::Null_();
  }
};

}  // namespace

Status Executor::CheckSize(size_t rows) const {
  if (config_.max_intermediate_rows > 0 &&
      rows > config_.max_intermediate_rows) {
    return Status::ExecutionError(StringFormat(
        "intermediate result exceeds limit (%zu > %zu rows)", rows,
        config_.max_intermediate_rows));
  }
  return Status::OK();
}

Result<TablePtr> Executor::Execute(const PlanNodePtr& plan,
                                   ExecStats* stats) const {
  if (!plan) return Status::InvalidArgument("null plan");
  ExecStats local;
  FEDCAL_ASSIGN_OR_RETURN(TablePtr result, ExecuteNode(*plan, &local));
  local.rows_output = result->num_rows();
  local.bytes_output = result->byte_size();
  if (stats) stats->Merge(local);
  return result;
}

Result<TablePtr> Executor::ExecuteNode(const PlanNode& node,
                                       ExecStats* stats) const {
  ++stats->operators_executed;
  switch (node.kind) {
    case PlanKind::kScan:
      return ExecScan(node, stats);
    case PlanKind::kIndexScan:
      return ExecIndexScan(node, stats);
    case PlanKind::kFilter:
      return ExecFilter(node, stats);
    case PlanKind::kProject:
      return ExecProject(node, stats);
    case PlanKind::kHashJoin:
      return ExecHashJoin(node, stats);
    case PlanKind::kNestedLoopJoin:
      return ExecNestedLoopJoin(node, stats);
    case PlanKind::kAggregate:
      return ExecAggregate(node, stats);
    case PlanKind::kSort:
      return ExecSort(node, stats);
    case PlanKind::kDistinct:
      return ExecDistinct(node, stats);
    case PlanKind::kLimit:
      return ExecLimit(node, stats);
  }
  return Status::Internal("unhandled plan kind");
}

Result<TablePtr> Executor::ExecScan(const PlanNode& node,
                                    ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(node.table_name));
  stats->rows_scanned += table->num_rows();
  // The whole scan charge (row touch + bytes read) is I/O work.
  const double io = config_.costs.scan_row * table->num_rows() +
                    config_.costs.scan_byte * table->byte_size();
  stats->work_units += io;
  stats->io_units += io;
  return table;
}

Result<TablePtr> Executor::ExecIndexScan(const PlanNode& node,
                                          ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(node.table_name));
  const HashIndex* index = table->GetIndex(node.index_column);
  if (index == nullptr) {
    return Status::ExecutionError("table " + node.table_name +
                                  " has no index on " + node.index_column);
  }
  Row empty;
  FEDCAL_ASSIGN_OR_RETURN(Value key, node.index_value->Eval(empty));
  auto out = std::make_shared<Table>("", node.output_schema);
  double io = config_.costs.index_probe;
  for (size_t row_id : index->Probe(key)) {
    if (row_id >= table->num_rows()) continue;
    const Row& row = table->row(row_id);
    // Verify exact equality (the index probe is hash-based).
    if (row[index->column_index()].is_null() ||
        row[index->column_index()].Compare(key) != 0) {
      continue;
    }
    io += config_.costs.index_match_row;
    out->AppendRowUnchecked(row);
  }
  stats->rows_scanned += out->num_rows();
  stats->work_units += io;
  stats->io_units += io;
  return out;
}

Result<TablePtr> Executor::ExecFilter(const PlanNode& node,
                                      ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats));
  auto out = std::make_shared<Table>("", node.output_schema);
  stats->work_units +=
      config_.costs.filter_row * static_cast<double>(in->num_rows());
  for (const Row& row : in->rows()) {
    FEDCAL_ASSIGN_OR_RETURN(Value v, node.predicate->Eval(row));
    if (IsTruthy(v)) out->AppendRowUnchecked(row);
  }
  return out;
}

Result<TablePtr> Executor::ExecProject(const PlanNode& node,
                                       ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats));
  auto out = std::make_shared<Table>("", node.output_schema);
  stats->work_units += config_.costs.project_expr *
                       static_cast<double>(in->num_rows()) *
                       static_cast<double>(node.projections.size());
  for (const Row& row : in->rows()) {
    Row projected;
    projected.reserve(node.projections.size());
    for (const auto& e : node.projections) {
      FEDCAL_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      projected.push_back(std::move(v));
    }
    out->AppendRowUnchecked(std::move(projected));
  }
  return out;
}

Result<TablePtr> Executor::ExecHashJoin(const PlanNode& node,
                                        ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr build, ExecuteNode(*node.left, stats));
  FEDCAL_ASSIGN_OR_RETURN(TablePtr probe, ExecuteNode(*node.right, stats));

  auto extract_keys = [](const Row& row, const std::vector<size_t>& slots) {
    Row key;
    key.reserve(slots.size());
    for (size_t s : slots) key.push_back(row[s]);
    return key;
  };

  std::unordered_multimap<RowKey, size_t, RowKeyHash> table;
  table.reserve(build->num_rows());
  for (size_t i = 0; i < build->num_rows(); ++i) {
    Row key = extract_keys(build->row(i), node.left_keys);
    // NULL join keys never match; skip them at build time.
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (has_null) continue;
    table.emplace(RowKey(std::move(key)), i);
  }
  stats->work_units +=
      config_.costs.hash_build_row * static_cast<double>(build->num_rows());

  auto out = std::make_shared<Table>("", node.output_schema);
  stats->work_units +=
      config_.costs.hash_probe_row * static_cast<double>(probe->num_rows());
  for (const Row& probe_row : probe->rows()) {
    Row key = extract_keys(probe_row, node.right_keys);
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (has_null) continue;
    auto [begin, end] = table.equal_range(RowKey(std::move(key)));
    for (auto it = begin; it != end; ++it) {
      Row joined = build->row(it->second);
      joined.insert(joined.end(), probe_row.begin(), probe_row.end());
      if (node.residual) {
        FEDCAL_ASSIGN_OR_RETURN(Value v, node.residual->Eval(joined));
        if (!IsTruthy(v)) continue;
      }
      stats->work_units += config_.costs.join_output_row;
      out->AppendRowUnchecked(std::move(joined));
      FEDCAL_RETURN_NOT_OK(CheckSize(out->num_rows()));
    }
  }
  return out;
}

Result<TablePtr> Executor::ExecNestedLoopJoin(const PlanNode& node,
                                              ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr left, ExecuteNode(*node.left, stats));
  FEDCAL_ASSIGN_OR_RETURN(TablePtr right, ExecuteNode(*node.right, stats));
  auto out = std::make_shared<Table>("", node.output_schema);
  stats->work_units += config_.costs.nlj_pair *
                       static_cast<double>(left->num_rows()) *
                       static_cast<double>(right->num_rows());
  for (const Row& l : left->rows()) {
    for (const Row& r : right->rows()) {
      Row joined = l;
      joined.insert(joined.end(), r.begin(), r.end());
      if (node.predicate) {
        FEDCAL_ASSIGN_OR_RETURN(Value v, node.predicate->Eval(joined));
        if (!IsTruthy(v)) continue;
      }
      stats->work_units += config_.costs.join_output_row;
      out->AppendRowUnchecked(std::move(joined));
      FEDCAL_RETURN_NOT_OK(CheckSize(out->num_rows()));
    }
  }
  return out;
}

Result<TablePtr> Executor::ExecAggregate(const PlanNode& node,
                                         ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats));

  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::unordered_map<RowKey, Group, RowKeyHash> groups;

  stats->work_units +=
      config_.costs.agg_update_row * static_cast<double>(in->num_rows());
  for (const Row& row : in->rows()) {
    Row key;
    key.reserve(node.group_by.size());
    for (const auto& g : node.group_by) {
      FEDCAL_ASSIGN_OR_RETURN(Value v, g->Eval(row));
      key.push_back(std::move(v));
    }
    RowKey rk(key);
    auto it = groups.find(rk);
    if (it == groups.end()) {
      Group grp;
      grp.key = std::move(key);
      grp.states.resize(node.aggs.size());
      it = groups.emplace(std::move(rk), std::move(grp)).first;
    }
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      const AggItem& item = node.aggs[a];
      if (item.count_star) {
        it->second.states[a].Update(item, Value());
      } else {
        FEDCAL_ASSIGN_OR_RETURN(Value v, item.arg->Eval(row));
        it->second.states[a].Update(item, v);
      }
    }
  }

  auto out = std::make_shared<Table>("", node.output_schema);
  // Global aggregation over empty input still yields one row.
  if (groups.empty() && node.group_by.empty()) {
    Row row;
    for (const AggItem& item : node.aggs) {
      row.push_back(AggState().Finalize(item));
    }
    out->AppendRowUnchecked(std::move(row));
    stats->work_units += config_.costs.agg_group;
    return out;
  }
  stats->work_units +=
      config_.costs.agg_group * static_cast<double>(groups.size());
  for (auto& [rk, grp] : groups) {
    Row row = grp.key;
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      row.push_back(grp.states[a].Finalize(node.aggs[a]));
    }
    out->AppendRowUnchecked(std::move(row));
  }
  return out;
}

Result<TablePtr> Executor::ExecSort(const PlanNode& node,
                                    ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats));
  const size_t n = in->num_rows();
  stats->work_units +=
      config_.costs.sort_row_log * static_cast<double>(n) * Log2Rows(n);

  // Precompute sort keys per row, then stable-sort indices.
  std::vector<Row> keys;
  keys.reserve(n);
  for (const Row& row : in->rows()) {
    Row key;
    key.reserve(node.sort_keys.size());
    for (const auto& [e, desc] : node.sort_keys) {
      FEDCAL_ASSIGN_OR_RETURN(Value v, e->Eval(row));
      Unused(desc);
      key.push_back(std::move(v));
    }
    keys.push_back(std::move(key));
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < node.sort_keys.size(); ++k) {
      const int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return node.sort_keys[k].second ? c > 0 : c < 0;
    }
    return false;
  });

  auto out = std::make_shared<Table>("", node.output_schema);
  for (size_t i : order) out->AppendRowUnchecked(in->row(i));
  return out;
}

Result<TablePtr> Executor::ExecDistinct(const PlanNode& node,
                                        ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats));
  stats->work_units +=
      config_.costs.distinct_row * static_cast<double>(in->num_rows());
  std::unordered_map<RowKey, bool, RowKeyHash> seen;
  auto out = std::make_shared<Table>("", node.output_schema);
  for (const Row& row : in->rows()) {
    RowKey rk(row);
    if (seen.emplace(std::move(rk), true).second) {
      out->AppendRowUnchecked(row);
    }
  }
  return out;
}

Result<TablePtr> Executor::ExecLimit(const PlanNode& node,
                                     ExecStats* stats) const {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr in, ExecuteNode(*node.left, stats));
  auto out = std::make_shared<Table>("", node.output_schema);
  const size_t n = std::min<size_t>(
      in->num_rows(),
      node.limit < 0 ? 0 : static_cast<size_t>(node.limit));
  for (size_t i = 0; i < n; ++i) out->AppendRowUnchecked(in->row(i));
  return out;
}

}  // namespace fedcal
