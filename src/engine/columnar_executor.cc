#include "engine/columnar_executor.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "engine/exec_common.h"

namespace fedcal {

namespace {

/// Maps a global row index of a ColumnarTable to (chunk, local offset).
class RowLocator {
 public:
  explicit RowLocator(const ColumnarTable& t) {
    starts_.reserve(t.chunks().size());
    size_t s = 0;
    for (const ColumnChunk& c : t.chunks()) {
      starts_.push_back(s);
      s += c.length;
    }
  }

  std::pair<uint32_t, uint32_t> Locate(size_t r) const {
    const size_t c = static_cast<size_t>(
        std::upper_bound(starts_.begin(), starts_.end(), r) -
        starts_.begin() - 1);
    return {static_cast<uint32_t>(c), static_cast<uint32_t>(r - starts_[c])};
  }

 private:
  std::vector<size_t> starts_;
};

/// Compacts the selected rows of `src` into a fresh chunk. Output columns
/// start in the source representation, so same-kind cells copy through the
/// typed fast path (and demoted sources stay variant-exact).
ColumnChunk GatherChunk(const ColumnChunk& src, const uint32_t* sel,
                        size_t k) {
  ColumnChunk out;
  out.length = k;
  out.columns.reserve(src.columns.size());
  for (const ColumnSlice& s : src.columns) {
    auto col = std::make_shared<ColumnData>(s.col->kind());
    col->Reserve(k);
    for (size_t i = 0; i < k; ++i) {
      col->AppendFrom(*s.col, s.offset + sel[i]);
    }
    out.columns.push_back(ColumnSlice{std::move(col), 0});
  }
  return out;
}

/// Appends `rows` (global indices into `src`) to `out` in chunks of
/// `batch_rows`. Used by Sort and Distinct, whose outputs are arbitrary
/// permutations/subsets of their input.
void AppendGatheredRows(const ColumnarTable& src,
                        const std::vector<size_t>& rows, size_t batch_rows,
                        ColumnarTable* out) {
  if (batch_rows == 0) batch_rows = 1;
  const RowLocator loc(src);
  const size_t ncols = src.schema().num_columns();
  std::vector<std::pair<uint32_t, uint32_t>> locs;
  for (size_t start = 0; start < rows.size(); start += batch_rows) {
    const size_t len = std::min(batch_rows, rows.size() - start);
    locs.clear();
    locs.reserve(len);
    for (size_t i = 0; i < len; ++i) locs.push_back(loc.Locate(rows[start + i]));
    ColumnChunk chunk;
    chunk.length = len;
    chunk.columns.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      auto col = std::make_shared<ColumnData>(src.schema().column(c).type);
      col->Reserve(len);
      for (size_t i = 0; i < len; ++i) {
        const ColumnSlice& s = src.chunks()[locs[i].first].columns[c];
        col->AppendFrom(*s.col, s.offset + locs[i].second);
      }
      chunk.columns.push_back(ColumnSlice{std::move(col), 0});
    }
    out->AppendChunk(std::move(chunk));
  }
}

/// True when column `slot` of every chunk is a pure int64 vector (no mixed
/// demotion). For such columns Value comparison degenerates to int64
/// comparison — cross int/double equality cannot arise — so hash keys can
/// skip the per-row Value materialization entirely.
bool AllChunksInt64(const ColumnarTable& t, size_t slot) {
  for (const ColumnChunk& chunk : t.chunks()) {
    if (chunk.length == 0) continue;
    if (chunk.columns[slot].col->kind() != ColumnData::Kind::kInt64) {
      return false;
    }
  }
  return true;
}

/// Materializes a broadcast constant as a column of `n` cells.
ColumnPtr ConstantColumn(const Value& v, size_t n) {
  DataType t = DataType::kInt64;
  if (v.is_double()) t = DataType::kDouble;
  if (v.is_string()) t = DataType::kString;
  auto col = std::make_shared<ColumnData>(t);
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) col->AppendValue(v);
  return col;
}

}  // namespace

void ColumnarExecutor::ChargeScan(const Table& table,
                                  ExecStats* stats) const {
  stats->rows_scanned += table.num_rows();
  // The whole scan charge (row touch + bytes read) is I/O work.
  const double io = config_.costs.scan_row * table.num_rows() +
                    config_.costs.scan_byte * table.byte_size();
  stats->work_units += io;
  stats->io_units += io;
}

Status ColumnarExecutor::CheckSize(size_t rows) const {
  if (config_.max_intermediate_rows > 0 &&
      rows > config_.max_intermediate_rows) {
    return Status::ExecutionError(StringFormat(
        "intermediate result exceeds limit (%zu > %zu rows)", rows,
        config_.max_intermediate_rows));
  }
  return Status::OK();
}

Result<TablePtr> ColumnarExecutor::Execute(const PlanNodePtr& plan,
                                           ExecStats* stats) {
  return Execute(plan, stats, nullptr);
}

Result<TablePtr> ColumnarExecutor::Execute(
    const PlanNodePtr& plan, ExecStats* stats,
    std::shared_ptr<obs::OperatorProfile>* profile_out) {
  if (profile_out != nullptr) profile_out->reset();
  if (!plan) return Status::InvalidArgument("null plan");
  const bool profiling = config_.profile && profile_out != nullptr;
  ExecStats local;
  if (plan->kind == PlanKind::kScan) {
    // A bare scan returns the resolved table itself, exactly like the row
    // engine (same object, name, and byte accounting). The table is passed
    // through unchunked, so its profile records one batch.
    ++local.operators_executed;
    if (profiling) {
      OperatorProfileScope scope(*plan, local);
      FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(plan->table_name));
      ChargeScan(*table, &local);
      obs::OperatorProfile root;
      scope.Finish(local, table->num_rows(), /*batches=*/1,
                   /*arena_bytes=*/0, &root);
      *profile_out = root.children.front();
      local.rows_output = table->num_rows();
      local.bytes_output = table->byte_size();
      if (stats) stats->Merge(local);
      return table;
    }
    FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(plan->table_name));
    ChargeScan(*table, &local);
    local.rows_output = table->num_rows();
    local.bytes_output = table->byte_size();
    if (stats) stats->Merge(local);
    return table;
  }
  obs::OperatorProfile root;
  FEDCAL_ASSIGN_OR_RETURN(
      ColumnarTablePtr result,
      ExecNode(*plan, &local, profiling ? &root : nullptr));
  local.rows_output = result->num_rows();
  local.bytes_output = result->byte_size();
  if (stats) stats->Merge(local);
  if (profiling && !root.children.empty()) {
    *profile_out = root.children.front();
  }
  return Table::FromColumnar("", std::move(result));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecNode(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* parent) {
  ++stats->operators_executed;
  if (parent == nullptr) return DispatchNode(node, stats, nullptr);
  OperatorProfileScope scope(node, *stats);
  const size_t arena0 = arena_.bytes_allocated();
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr result,
                          DispatchNode(node, stats, scope.prof()));
  scope.Finish(*stats, result->num_rows(), result->chunks().size(),
               arena_.bytes_allocated() - arena0, parent);
  return result;
}

Result<ColumnarTablePtr> ColumnarExecutor::DispatchNode(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  switch (node.kind) {
    case PlanKind::kScan:
      return ExecScan(node, stats);
    case PlanKind::kIndexScan:
      return ExecIndexScan(node, stats);
    case PlanKind::kFilter:
      return ExecFilter(node, stats, prof);
    case PlanKind::kProject:
      return ExecProject(node, stats, prof);
    case PlanKind::kHashJoin:
      return ExecHashJoin(node, stats, prof);
    case PlanKind::kNestedLoopJoin:
      return ExecNestedLoopJoin(node, stats, prof);
    case PlanKind::kAggregate:
      return ExecAggregate(node, stats, prof);
    case PlanKind::kSort:
      return ExecSort(node, stats, prof);
    case PlanKind::kDistinct:
      return ExecDistinct(node, stats, prof);
    case PlanKind::kLimit:
      return ExecLimit(node, stats, prof);
  }
  return Status::Internal("unhandled plan kind");
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecScan(const PlanNode& node,
                                                    ExecStats* stats) {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(node.table_name));
  ChargeScan(*table, stats);
  // Base tables cache this mirror, so repeated scans convert once;
  // columnar-backed tables (fragment results) return their chunks as-is.
  return table->columnar(config_.batch_rows);
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecIndexScan(const PlanNode& node,
                                                         ExecStats* stats) {
  FEDCAL_ASSIGN_OR_RETURN(TablePtr table, resolver_(node.table_name));
  const HashIndex* index = table->GetIndex(node.index_column);
  if (index == nullptr) {
    return Status::ExecutionError("table " + node.table_name +
                                  " has no index on " + node.index_column);
  }
  Row empty;
  FEDCAL_ASSIGN_OR_RETURN(Value key, node.index_value->Eval(empty));
  double io = config_.costs.index_probe;
  std::vector<size_t> matches;
  for (size_t row_id : index->Probe(key)) {
    if (row_id >= table->num_rows()) continue;
    const Row& row = table->row(row_id);
    // Verify exact equality (the index probe is hash-based).
    if (row[index->column_index()].is_null() ||
        row[index->column_index()].Compare(key) != 0) {
      continue;
    }
    io += config_.costs.index_match_row;
    matches.push_back(row_id);
  }
  stats->rows_scanned += matches.size();
  stats->work_units += io;
  stats->io_units += io;

  // Point lookups touch a handful of rows; build their columns directly
  // from the (row-backed) base table instead of forcing a full mirror.
  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  const size_t ncols = node.output_schema.num_columns();
  const size_t batch = config_.batch_rows == 0 ? 1 : config_.batch_rows;
  for (size_t start = 0; start < matches.size(); start += batch) {
    const size_t len = std::min(batch, matches.size() - start);
    ColumnChunk chunk;
    chunk.length = len;
    chunk.columns.reserve(ncols);
    size_t bytes = 0;
    for (size_t c = 0; c < ncols; ++c) {
      auto col =
          std::make_shared<ColumnData>(node.output_schema.column(c).type);
      col->Reserve(len);
      for (size_t i = 0; i < len; ++i) {
        const Value& v = table->row(matches[start + i])[c];
        col->AppendValue(v);
        bytes += v.ByteSize();
      }
      chunk.columns.push_back(ColumnSlice{std::move(col), 0});
    }
    out->AppendChunk(std::move(chunk), bytes);
  }
  return ColumnarTablePtr(std::move(out));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecFilter(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr in,
                          ExecNode(*node.left, stats, prof));
  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  stats->work_units +=
      config_.costs.filter_row * static_cast<double>(in->num_rows());
  for (const ColumnChunk& chunk : in->chunks()) {
    if (chunk.length == 0) continue;
    size_t k = 0;
    FEDCAL_ASSIGN_OR_RETURN(
        const uint32_t* sel,
        eval_.EvalSelection(*node.predicate, chunk, &k));
    if (k == 0) continue;
    if (k == chunk.length) {
      // Every row passed: share the chunk instead of copying it.
      out->AppendChunk(chunk);
    } else {
      out->AppendChunk(GatherChunk(chunk, sel, k));
    }
  }
  return ColumnarTablePtr(std::move(out));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecProject(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr in,
                          ExecNode(*node.left, stats, prof));
  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  stats->work_units += config_.costs.project_expr *
                       static_cast<double>(in->num_rows()) *
                       static_cast<double>(node.projections.size());
  for (const ColumnChunk& chunk : in->chunks()) {
    if (chunk.length == 0) continue;
    ColumnChunk oc;
    oc.length = chunk.length;
    oc.columns.reserve(node.projections.size());
    for (const BoundExprPtr& e : node.projections) {
      FEDCAL_ASSIGN_OR_RETURN(VectorResult v, eval_.Eval(*e, chunk));
      if (v.constant) {
        oc.columns.push_back(
            ColumnSlice{ConstantColumn(v.const_value, chunk.length), 0});
      } else {
        // Pass-through and computed columns alike are shared, not copied.
        oc.columns.push_back(ColumnSlice{std::move(v.col), v.offset});
      }
    }
    out->AppendChunk(std::move(oc));
  }
  return ColumnarTablePtr(std::move(out));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecHashJoin(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr build,
                          ExecNode(*node.left, stats, prof));
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr probe,
                          ExecNode(*node.right, stats, prof));

  // Candidate (build, probe) pairs in probe order, matches ascending —
  // exactly the row engine's deterministic emission order.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  if (node.left_keys.size() == 1 && node.right_keys.size() == 1 &&
      AllChunksInt64(*build, node.left_keys[0]) &&
      AllChunksInt64(*probe, node.right_keys[0])) {
    // Typed fast path: both key columns are pure int64, so Value equality
    // degenerates to int64 equality and the per-row Row/Value key
    // materialization disappears. Matching rows chain through a single
    // `next` array (built in reverse so each chain lists build rows in
    // ascending order — the required emission order) instead of one heap
    // vector per distinct key; when the build keys span a compact range
    // (serial ids do) the chain heads live in a direct-address array and
    // the hash table disappears entirely.
    struct KeyCol {
      const int64_t* vals;
      const uint8_t* nulls;  // null => skip (NULL keys never join)
      size_t len;
      uint32_t base;
    };
    auto key_cols = [](const ColumnarTable& t, size_t slot) {
      std::vector<KeyCol> cols;
      cols.reserve(t.chunks().size());
      uint32_t base = 0;
      for (const ColumnChunk& chunk : t.chunks()) {
        const ColumnSlice& s = chunk.columns[slot];
        cols.push_back(KeyCol{
            s.col->ints() + s.offset,
            s.col->has_nulls() ? s.col->nulls() + s.offset : nullptr,
            chunk.length, base});
        base += static_cast<uint32_t>(chunk.length);
      }
      return cols;
    };
    const std::vector<KeyCol> bcols = key_cols(*build, node.left_keys[0]);
    const std::vector<KeyCol> pcols = key_cols(*probe, node.right_keys[0]);

    const size_t bn = build->num_rows();
    constexpr uint32_t kNone = UINT32_MAX;
    int64_t kmin = 0;
    int64_t kmax = 0;
    size_t nonnull = 0;
    for (const KeyCol& kc : bcols) {
      for (size_t i = 0; i < kc.len; ++i) {
        if (kc.nulls != nullptr && kc.nulls[i] != 0) continue;
        const int64_t k = kc.vals[i];
        if (nonnull == 0) {
          kmin = kmax = k;
        } else {
          if (k < kmin) kmin = k;
          if (k > kmax) kmax = k;
        }
        ++nonnull;
      }
    }
    // Unsigned subtraction is overflow-safe for any int64 pair.
    const uint64_t range =
        static_cast<uint64_t>(kmax) - static_cast<uint64_t>(kmin);
    // Direct addressing pays one uint32 slot per key in [kmin, kmax]. The
    // absolute floor matters: a small build side probed by a large input
    // (selective filter joined against a big table) is worth a few MB of
    // head array to turn every probe into an array index.
    const bool dense =
        nonnull > 0 &&
        range < std::max<uint64_t>(4 * static_cast<uint64_t>(bn) + 1024,
                                   uint64_t{1} << 22);

    std::vector<uint32_t> next(bn, kNone);
    std::vector<uint32_t> head;
    std::unordered_map<int64_t, uint32_t> head_map;
    if (dense) {
      head.assign(static_cast<size_t>(range) + 1, kNone);
    } else {
      head_map.reserve(nonnull);
    }
    for (size_t c = bcols.size(); c-- > 0;) {
      const KeyCol& kc = bcols[c];
      for (size_t i = kc.len; i-- > 0;) {
        if (kc.nulls != nullptr && kc.nulls[i] != 0) continue;
        const uint32_t row = kc.base + static_cast<uint32_t>(i);
        if (dense) {
          uint32_t& h = head[static_cast<size_t>(
              static_cast<uint64_t>(kc.vals[i]) -
              static_cast<uint64_t>(kmin))];
          next[row] = h;
          h = row;
        } else {
          uint32_t& h = head_map.try_emplace(kc.vals[i], kNone).first->second;
          next[row] = h;
          h = row;
        }
      }
    }
    for (const KeyCol& kc : pcols) {
      for (size_t i = 0; i < kc.len; ++i) {
        if (kc.nulls != nullptr && kc.nulls[i] != 0) continue;
        const int64_t k = kc.vals[i];
        uint32_t h = kNone;
        if (dense) {
          if (k >= kmin && k <= kmax) {
            h = head[static_cast<size_t>(static_cast<uint64_t>(k) -
                                         static_cast<uint64_t>(kmin))];
          }
        } else {
          auto it = head_map.find(k);
          if (it != head_map.end()) h = it->second;
        }
        for (uint32_t b = h; b != kNone; b = next[b]) {
          pairs.emplace_back(b, kc.base + static_cast<uint32_t>(i));
        }
      }
    }
  } else {
    // Generic path: composite or non-int64 keys hash as row-engine Rows.
    std::unordered_map<RowKey, std::vector<uint32_t>, RowKeyHash> table;
    table.reserve(build->num_rows());
    size_t base = 0;
    for (const ColumnChunk& chunk : build->chunks()) {
      for (size_t i = 0; i < chunk.length; ++i) {
        Row key;
        key.reserve(node.left_keys.size());
        bool has_null = false;
        for (size_t s : node.left_keys) {
          Value v = chunk.ValueAt(s, i);
          has_null |= v.is_null();
          key.push_back(std::move(v));
        }
        // NULL join keys never match; skip them at build time.
        if (has_null) continue;
        table[RowKey(std::move(key))].push_back(
            static_cast<uint32_t>(base + i));
      }
      base += chunk.length;
    }
    base = 0;
    for (const ColumnChunk& chunk : probe->chunks()) {
      for (size_t i = 0; i < chunk.length; ++i) {
        Row key;
        key.reserve(node.right_keys.size());
        bool has_null = false;
        for (size_t s : node.right_keys) {
          Value v = chunk.ValueAt(s, i);
          has_null |= v.is_null();
          key.push_back(std::move(v));
        }
        if (has_null) continue;
        auto it = table.find(RowKey(std::move(key)));
        if (it == table.end()) continue;
        for (uint32_t b : it->second) {
          pairs.emplace_back(b, static_cast<uint32_t>(base + i));
        }
      }
      base += chunk.length;
    }
  }
  stats->work_units +=
      config_.costs.hash_build_row * static_cast<double>(build->num_rows());
  stats->work_units +=
      config_.costs.hash_probe_row * static_cast<double>(probe->num_rows());

  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  const RowLocator bloc(*build);
  const RowLocator ploc(*probe);
  const size_t bw = build->schema().num_columns();
  const size_t pw = probe->schema().num_columns();
  const size_t batch = config_.batch_rows == 0 ? 1 : config_.batch_rows;
  size_t emitted = 0;
  std::vector<std::pair<uint32_t, uint32_t>> blocs;
  std::vector<std::pair<uint32_t, uint32_t>> plocs;
  for (size_t start = 0; start < pairs.size(); start += batch) {
    const size_t len = std::min(batch, pairs.size() - start);
    blocs.clear();
    plocs.clear();
    blocs.reserve(len);
    plocs.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      blocs.push_back(bloc.Locate(pairs[start + i].first));
      plocs.push_back(ploc.Locate(pairs[start + i].second));
    }
    // Gather the candidate pairs into a concatenated [build, probe] chunk.
    ColumnChunk cand;
    cand.length = len;
    cand.columns.reserve(bw + pw);
    for (size_t c = 0; c < bw + pw; ++c) {
      const bool from_build = c < bw;
      const ColumnarTable& side = from_build ? *build : *probe;
      const size_t side_col = from_build ? c : c - bw;
      const auto& locs = from_build ? blocs : plocs;
      auto col = std::make_shared<ColumnData>(
          side.schema().column(side_col).type);
      col->Reserve(len);
      for (size_t i = 0; i < len; ++i) {
        const ColumnSlice& s =
            side.chunks()[locs[i].first].columns[side_col];
        col->AppendFrom(*s.col, s.offset + locs[i].second);
      }
      cand.columns.push_back(ColumnSlice{std::move(col), 0});
    }
    const uint32_t* sel = nullptr;
    size_t k = len;
    if (node.residual) {
      FEDCAL_ASSIGN_OR_RETURN(sel,
                              eval_.EvalSelection(*node.residual, cand, &k));
    }
    if (k == 0) continue;
    for (size_t j = 0; j < k; ++j) {
      stats->work_units += config_.costs.join_output_row;
      ++emitted;
      FEDCAL_RETURN_NOT_OK(CheckSize(emitted));
    }
    if (k == len) {
      out->AppendChunk(std::move(cand));
    } else {
      out->AppendChunk(GatherChunk(cand, sel, k));
    }
  }
  return ColumnarTablePtr(std::move(out));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecNestedLoopJoin(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr left,
                          ExecNode(*node.left, stats, prof));
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr right,
                          ExecNode(*node.right, stats, prof));
  // Nested-loop joins are rare and small; run the row engine's loop over
  // materialized rows (charges and emission order are identical).
  const std::vector<Row> lrows = left->MaterializeRows();
  const std::vector<Row> rrows = right->MaterializeRows();
  stats->work_units += config_.costs.nlj_pair *
                       static_cast<double>(left->num_rows()) *
                       static_cast<double>(right->num_rows());
  std::vector<Row> out_rows;
  for (const Row& l : lrows) {
    for (const Row& r : rrows) {
      Row joined = l;
      joined.insert(joined.end(), r.begin(), r.end());
      if (node.predicate) {
        FEDCAL_ASSIGN_OR_RETURN(Value v, node.predicate->Eval(joined));
        if (!IsTruthy(v)) continue;
      }
      stats->work_units += config_.costs.join_output_row;
      out_rows.push_back(std::move(joined));
      FEDCAL_RETURN_NOT_OK(CheckSize(out_rows.size()));
    }
  }
  return ColumnarFromRows(node.output_schema, out_rows, config_.batch_rows);
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecAggregate(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr in,
                          ExecNode(*node.left, stats, prof));

  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  // First-seen order, matching the row engine.
  std::vector<Group> groups;

  stats->work_units +=
      config_.costs.agg_update_row * static_cast<double>(in->num_rows());

  // Evaluate group keys and aggregate arguments for every chunk up front
  // (same expression order as the per-chunk loop, so the first evaluation
  // error is unchanged). The pre-pass also decides whether the typed
  // single-int64 group-key fast path applies: every chunk's key must be a
  // pure int64 column, so Value identity reduces to int64 identity and the
  // per-row Row/RowKey materialization disappears.
  struct ChunkVals {
    const ColumnChunk* chunk = nullptr;
    std::vector<VectorResult> group_vals;
    std::vector<VectorResult> agg_vals;
  };
  std::vector<ChunkVals> evaluated;
  evaluated.reserve(in->chunks().size());
  bool int64_keys = node.group_by.size() == 1;
  for (const ColumnChunk& chunk : in->chunks()) {
    if (chunk.length == 0) continue;
    ChunkVals cv;
    cv.chunk = &chunk;
    cv.group_vals.reserve(node.group_by.size());
    for (const BoundExprPtr& g : node.group_by) {
      FEDCAL_ASSIGN_OR_RETURN(VectorResult v, eval_.Eval(*g, chunk));
      cv.group_vals.push_back(std::move(v));
    }
    cv.agg_vals.assign(node.aggs.size(), VectorResult{});
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      if (node.aggs[a].count_star) continue;
      FEDCAL_ASSIGN_OR_RETURN(cv.agg_vals[a],
                              eval_.Eval(*node.aggs[a].arg, chunk));
    }
    if (int64_keys) {
      const VectorResult& gv = cv.group_vals[0];
      int64_keys =
          !gv.constant && gv.col->kind() == ColumnData::Kind::kInt64;
    }
    evaluated.push_back(std::move(cv));
  }

  std::unordered_map<RowKey, size_t, RowKeyHash> group_index;
  std::unordered_map<int64_t, size_t> int_index;
  // NULL group keys form a regular group in the row engine (Compare treats
  // null == null); the typed map can't hold them, so they get a dedicated
  // slot that still respects first-seen ordering.
  size_t null_group = SIZE_MAX;
  for (const ChunkVals& cv : evaluated) {
    const ColumnChunk& chunk = *cv.chunk;
    const int64_t* key_ints = nullptr;
    const uint8_t* key_nulls = nullptr;
    if (int64_keys) {
      const VectorResult& gv = cv.group_vals[0];
      key_ints = gv.col->ints() + gv.offset;
      key_nulls =
          gv.col->has_nulls() ? gv.col->nulls() + gv.offset : nullptr;
    }
    for (size_t i = 0; i < chunk.length; ++i) {
      size_t gi;
      if (int64_keys) {
        if (key_nulls != nullptr && key_nulls[i] != 0) {
          if (null_group == SIZE_MAX) {
            null_group = groups.size();
            Group grp;
            grp.key.push_back(Value());
            grp.states.resize(node.aggs.size());
            groups.push_back(std::move(grp));
          }
          gi = null_group;
        } else {
          auto [it, inserted] =
              int_index.emplace(key_ints[i], groups.size());
          if (inserted) {
            Group grp;
            grp.key.push_back(Value(key_ints[i]));
            grp.states.resize(node.aggs.size());
            groups.push_back(std::move(grp));
          }
          gi = it->second;
        }
      } else {
        Row key;
        key.reserve(cv.group_vals.size());
        for (const VectorResult& gv : cv.group_vals) key.push_back(gv.At(i));
        RowKey rk(key);
        auto [it, inserted] =
            group_index.emplace(std::move(rk), groups.size());
        if (inserted) {
          Group grp;
          grp.key = std::move(key);
          grp.states.resize(node.aggs.size());
          groups.push_back(std::move(grp));
        }
        gi = it->second;
      }
      Group& grp = groups[gi];
      for (size_t a = 0; a < node.aggs.size(); ++a) {
        const AggItem& item = node.aggs[a];
        if (item.count_star) {
          grp.states[a].Update(item, Value());
        } else {
          grp.states[a].Update(item, cv.agg_vals[a].At(i));
        }
      }
    }
  }

  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  const size_t ncols = node.output_schema.num_columns();
  const size_t nkeys = node.group_by.size();
  // Global aggregation over empty input still yields one row.
  if (groups.empty() && node.group_by.empty()) {
    Group empty_grp;
    empty_grp.states.resize(node.aggs.size());
    groups.push_back(std::move(empty_grp));
    stats->work_units += config_.costs.agg_group;
  } else {
    stats->work_units +=
        config_.costs.agg_group * static_cast<double>(groups.size());
  }
  const size_t batch = config_.batch_rows == 0 ? 1 : config_.batch_rows;
  for (size_t start = 0; start < groups.size(); start += batch) {
    const size_t len = std::min(batch, groups.size() - start);
    ColumnChunk chunk;
    chunk.length = len;
    chunk.columns.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      auto col =
          std::make_shared<ColumnData>(node.output_schema.column(c).type);
      col->Reserve(len);
      for (size_t i = 0; i < len; ++i) {
        const Group& grp = groups[start + i];
        if (c < nkeys) {
          col->AppendValue(grp.key[c]);
        } else {
          col->AppendValue(grp.states[c - nkeys].Finalize(
              node.aggs[c - nkeys]));
        }
      }
      chunk.columns.push_back(ColumnSlice{std::move(col), 0});
    }
    out->AppendChunk(std::move(chunk));
  }
  return ColumnarTablePtr(std::move(out));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecSort(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr in,
                          ExecNode(*node.left, stats, prof));
  const size_t n = in->num_rows();
  stats->work_units +=
      config_.costs.sort_row_log * static_cast<double>(n) * Log2Rows(n);

  // Precompute sort keys per row (vectorized per chunk), then stable-sort
  // indices with the row engine's comparator: identical permutation.
  std::vector<Row> keys;
  keys.reserve(n);
  std::vector<VectorResult> key_vals;
  for (const ColumnChunk& chunk : in->chunks()) {
    if (chunk.length == 0) continue;
    key_vals.clear();
    for (const auto& [e, desc] : node.sort_keys) {
      Unused(desc);
      FEDCAL_ASSIGN_OR_RETURN(VectorResult v, eval_.Eval(*e, chunk));
      key_vals.push_back(std::move(v));
    }
    for (size_t i = 0; i < chunk.length; ++i) {
      Row key;
      key.reserve(key_vals.size());
      for (const VectorResult& kv : key_vals) key.push_back(kv.At(i));
      keys.push_back(std::move(key));
    }
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < node.sort_keys.size(); ++k) {
      const int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return node.sort_keys[k].second ? c > 0 : c < 0;
    }
    return false;
  });

  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  AppendGatheredRows(*in, order, config_.batch_rows, out.get());
  return ColumnarTablePtr(std::move(out));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecDistinct(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr in,
                          ExecNode(*node.left, stats, prof));
  stats->work_units +=
      config_.costs.distinct_row * static_cast<double>(in->num_rows());
  std::unordered_map<RowKey, bool, RowKeyHash> seen;
  std::vector<size_t> picked;
  size_t base = 0;
  for (const ColumnChunk& chunk : in->chunks()) {
    for (size_t i = 0; i < chunk.length; ++i) {
      Row row;
      row.reserve(chunk.columns.size());
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        row.push_back(chunk.ValueAt(c, i));
      }
      if (seen.emplace(RowKey(std::move(row)), true).second) {
        picked.push_back(base + i);
      }
    }
    base += chunk.length;
  }
  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  AppendGatheredRows(*in, picked, config_.batch_rows, out.get());
  return ColumnarTablePtr(std::move(out));
}

Result<ColumnarTablePtr> ColumnarExecutor::ExecLimit(
    const PlanNode& node, ExecStats* stats, obs::OperatorProfile* prof) {
  FEDCAL_ASSIGN_OR_RETURN(ColumnarTablePtr in,
                          ExecNode(*node.left, stats, prof));
  const size_t n = std::min<size_t>(
      in->num_rows(),
      node.limit < 0 ? 0 : static_cast<size_t>(node.limit));
  auto out = std::make_shared<ColumnarTable>(node.output_schema);
  size_t remaining = n;
  for (const ColumnChunk& chunk : in->chunks()) {
    if (remaining == 0) break;
    const size_t take = std::min(remaining, chunk.length);
    // Whole or partial chunks are shared, never copied.
    out->AppendChunk(take == chunk.length ? chunk : chunk.Slice(0, take));
    remaining -= take;
  }
  return ColumnarTablePtr(std::move(out));
}

}  // namespace fedcal
