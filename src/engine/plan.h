#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/bound_expr.h"
#include "sql/binder.h"
#include "storage/schema.h"

namespace fedcal {

/// \brief Physical operator kinds executed by the engine.
enum class PlanKind {
  kScan,
  kIndexScan,
  kFilter,
  kProject,
  kHashJoin,
  kNestedLoopJoin,
  kAggregate,
  kSort,
  kDistinct,
  kLimit,
};

const char* PlanKindName(PlanKind k);

struct PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// \brief One aggregate computed by an Aggregate node.
struct AggItem {
  AggFunc func = AggFunc::kCount;
  bool count_star = false;
  BoundExprPtr arg;  ///< over the child's row; nullptr for COUNT(*)
  DataType result_type = DataType::kInt64;
  std::string name;
};

/// \brief A node in a physical plan tree.
///
/// Expressions in a node always reference slots of the row produced by its
/// child (left child for unary nodes; the concatenated [left, right] row
/// for join residual predicates).
struct PlanNode {
  PlanKind kind;
  Schema output_schema;

  PlanNodePtr left;   ///< child / build side
  PlanNodePtr right;  ///< probe side (joins only)

  // kScan / kIndexScan: resolved at execution time through the executor's
  // TableResolver.
  std::string table_name;

  // kIndexScan: hash-index point lookup `index_column = index_value`.
  std::string index_column;
  BoundExprPtr index_value;  ///< constant expression

  // kFilter (and scan-level pushed predicates use a Filter node directly
  // above the scan).
  BoundExprPtr predicate;

  // kProject
  std::vector<BoundExprPtr> projections;

  // kHashJoin: equality key slots; kNestedLoopJoin uses `predicate` over
  // the concatenated row. `residual` (hash join) is also over the
  // concatenated row.
  std::vector<size_t> left_keys;
  std::vector<size_t> right_keys;
  BoundExprPtr residual;

  // kAggregate
  std::vector<BoundExprPtr> group_by;
  std::vector<AggItem> aggs;

  // kSort: (expr over child row, descending)
  std::vector<std::pair<BoundExprPtr, bool>> sort_keys;

  // kLimit
  int64_t limit = 0;

  /// Optimizer annotations (filled by the cost model; 0 before costing).
  double estimated_rows = 0.0;
  double estimated_work = 0.0;

  /// Single-line operator description.
  std::string Describe() const;
  /// Multi-line indented tree rendering.
  std::string ToString(int indent = 0) const;

  /// Structural fingerprint of the plan tree. With `normalize_literals`,
  /// plans differing only in literal values (parameterized instances of
  /// the same fragment) collide — the signature QCC keys calibration on.
  size_t Fingerprint(bool normalize_literals) const;

  /// Like Fingerprint but ignoring scanned table names: two plans that are
  /// the same shape over different replicas collide. This is the §4.1
  /// "exchangeable query fragment processing plans must be identical"
  /// test.
  size_t ShapeFingerprint(bool normalize_literals = true) const;

  /// Clone-on-write parameter substitution over every expression in the
  /// tree (predicates, projections, index values, aggregate args, sort
  /// keys). Returns `plan` itself when no expression changed. Cost
  /// annotations are copied from the template; callers that need
  /// instance-accurate estimates re-annotate afterwards (see
  /// GlobalOptimizer::RecostSubstituted).
  static PlanNodePtr SubstituteParams(const PlanNodePtr& plan,
                                      const std::vector<Value>& params);

  /// Clones every node of the tree (expressions stay shared — they are
  /// immutable). Needed before re-annotating a substituted plan whose
  /// unchanged subtrees are shared with a cached template.
  static PlanNodePtr DeepClone(const PlanNodePtr& plan);

  // -- Builders ------------------------------------------------------------

  static PlanNodePtr Scan(std::string table_name, Schema schema);
  /// Point lookup through a hash index on `index_column`.
  static PlanNodePtr IndexScan(std::string table_name, Schema schema,
                               std::string index_column,
                               BoundExprPtr index_value);
  static PlanNodePtr Filter(PlanNodePtr child, BoundExprPtr predicate);
  static PlanNodePtr Project(PlanNodePtr child,
                             std::vector<BoundExprPtr> projections,
                             Schema output_schema);
  static PlanNodePtr HashJoin(PlanNodePtr left, PlanNodePtr right,
                              std::vector<size_t> left_keys,
                              std::vector<size_t> right_keys,
                              BoundExprPtr residual);
  static PlanNodePtr NestedLoopJoin(PlanNodePtr left, PlanNodePtr right,
                                    BoundExprPtr predicate);
  /// `output_schema` must match [group columns..., agg results...].
  static PlanNodePtr Aggregate(PlanNodePtr child,
                               std::vector<BoundExprPtr> group_by,
                               std::vector<AggItem> aggs,
                               Schema output_schema);
  static PlanNodePtr Sort(PlanNodePtr child,
                          std::vector<std::pair<BoundExprPtr, bool>> keys);
  static PlanNodePtr Distinct(PlanNodePtr child);
  static PlanNodePtr Limit(PlanNodePtr child, int64_t limit);

 private:
  size_t FingerprintImpl(bool normalize_literals,
                         bool include_table_names) const;
};

}  // namespace fedcal
