#include "engine/plan.h"

#include "common/string_util.h"

namespace fedcal {

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

std::string PlanNode::Describe() const {
  std::string s = PlanKindName(kind);
  switch (kind) {
    case PlanKind::kScan:
      s += "(";
      s += table_name;
      s += ")";
      break;
    case PlanKind::kIndexScan:
      s += "(";
      s += table_name;
      s += ".";
      s += index_column;
      s += " = ";
      s += index_value ? index_value->ToString() : "?";
      s += ")";
      break;
    case PlanKind::kFilter:
      s += "(";
      s += predicate ? predicate->ToString() : "true";
      s += ")";
      break;
    case PlanKind::kProject: {
      std::vector<std::string> parts;
      for (const auto& p : projections) parts.push_back(p->ToString());
      s += "(";
      s += Join(parts, ", ");
      s += ")";
      break;
    }
    case PlanKind::kHashJoin: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < left_keys.size(); ++i) {
        parts.push_back(StringFormat("$%zu=$%zu", left_keys[i],
                                     right_keys[i]));
      }
      s += "(";
      s += Join(parts, " AND ");
      if (residual) {
        s += " ; ";
        s += residual->ToString();
      }
      s += ")";
      break;
    }
    case PlanKind::kNestedLoopJoin:
      s += "(";
      s += predicate ? predicate->ToString() : "true";
      s += ")";
      break;
    case PlanKind::kAggregate: {
      std::vector<std::string> parts;
      for (const auto& g : group_by) parts.push_back(g->ToString());
      std::vector<std::string> aparts;
      for (const auto& a : aggs) aparts.push_back(a.name);
      s += "(by: ";
      s += Join(parts, ", ");
      s += "; aggs: ";
      s += Join(aparts, ", ");
      s += ")";
      break;
    }
    case PlanKind::kSort: {
      std::vector<std::string> parts;
      for (const auto& [e, desc] : sort_keys) {
        std::string key = e->ToString();
        if (desc) key += " DESC";
        parts.push_back(std::move(key));
      }
      s += "(";
      s += Join(parts, ", ");
      s += ")";
      break;
    }
    case PlanKind::kDistinct:
      break;
    case PlanKind::kLimit:
      s += StringFormat("(%lld)", static_cast<long long>(limit));
      break;
  }
  if (estimated_rows > 0) {
    s += StringFormat(" [est_rows=%.0f, est_work=%.0f]", estimated_rows,
                      estimated_work);
  }
  return s;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad + Describe();
  if (left) {
    s += "\n";
    s += left->ToString(indent + 1);
  }
  if (right) {
    s += "\n";
    s += right->ToString(indent + 1);
  }
  return s;
}

size_t PlanNode::ShapeFingerprint(bool normalize_literals) const {
  return FingerprintImpl(normalize_literals, /*include_table_names=*/false);
}

size_t PlanNode::Fingerprint(bool normalize_literals) const {
  return FingerprintImpl(normalize_literals, /*include_table_names=*/true);
}

size_t PlanNode::FingerprintImpl(bool normalize_literals,
                                 bool include_table_names) const {
  auto mix = [](size_t h, size_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  };
  size_t h = static_cast<size_t>(kind) * 0xff51afd7ed558ccdull;
  auto mix_expr = [&](const BoundExprPtr& e) {
    if (e) {
      h = mix(h, e->Fingerprint(normalize_literals, include_table_names));
    }
  };
  if (include_table_names) {
    h = mix(h, std::hash<std::string>{}(table_name));
  }
  h = mix(h, std::hash<std::string>{}(index_column));
  mix_expr(index_value);
  mix_expr(predicate);
  for (const auto& p : projections) mix_expr(p);
  for (size_t k : left_keys) h = mix(h, k + 1);
  for (size_t k : right_keys) h = mix(h, (k + 1) * 131);
  mix_expr(residual);
  for (const auto& g : group_by) mix_expr(g);
  for (const auto& a : aggs) {
    h = mix(h, static_cast<size_t>(a.func) + (a.count_star ? 97 : 0));
    mix_expr(a.arg);
  }
  for (const auto& [e, desc] : sort_keys) {
    mix_expr(e);
    h = mix(h, desc ? 2 : 1);
  }
  if (kind == PlanKind::kLimit) h = mix(h, static_cast<size_t>(limit));
  if (left) {
    h = mix(h, left->FingerprintImpl(normalize_literals,
                                     include_table_names));
  }
  if (right) {
    h = mix(h, right->FingerprintImpl(normalize_literals,
                                      include_table_names));
  }
  return h;
}

PlanNodePtr PlanNode::Scan(std::string table_name, Schema schema) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kScan;
  n->table_name = std::move(table_name);
  n->output_schema = std::move(schema);
  return n;
}

PlanNodePtr PlanNode::IndexScan(std::string table_name, Schema schema,
                                std::string index_column,
                                BoundExprPtr index_value) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kIndexScan;
  n->table_name = std::move(table_name);
  n->output_schema = std::move(schema);
  n->index_column = std::move(index_column);
  n->index_value = std::move(index_value);
  return n;
}

PlanNodePtr PlanNode::Filter(PlanNodePtr child, BoundExprPtr predicate) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kFilter;
  n->output_schema = child->output_schema;
  n->left = std::move(child);
  n->predicate = std::move(predicate);
  return n;
}

PlanNodePtr PlanNode::Project(PlanNodePtr child,
                              std::vector<BoundExprPtr> projections,
                              Schema output_schema) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kProject;
  n->left = std::move(child);
  n->projections = std::move(projections);
  n->output_schema = std::move(output_schema);
  return n;
}

PlanNodePtr PlanNode::HashJoin(PlanNodePtr left, PlanNodePtr right,
                               std::vector<size_t> left_keys,
                               std::vector<size_t> right_keys,
                               BoundExprPtr residual) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kHashJoin;
  n->output_schema =
      Schema::Concat(left->output_schema, right->output_schema);
  n->left = std::move(left);
  n->right = std::move(right);
  n->left_keys = std::move(left_keys);
  n->right_keys = std::move(right_keys);
  n->residual = std::move(residual);
  return n;
}

PlanNodePtr PlanNode::NestedLoopJoin(PlanNodePtr left, PlanNodePtr right,
                                     BoundExprPtr predicate) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kNestedLoopJoin;
  n->output_schema =
      Schema::Concat(left->output_schema, right->output_schema);
  n->left = std::move(left);
  n->right = std::move(right);
  n->predicate = std::move(predicate);
  return n;
}

PlanNodePtr PlanNode::Aggregate(PlanNodePtr child,
                                std::vector<BoundExprPtr> group_by,
                                std::vector<AggItem> aggs,
                                Schema output_schema) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAggregate;
  n->left = std::move(child);
  n->group_by = std::move(group_by);
  n->aggs = std::move(aggs);
  n->output_schema = std::move(output_schema);
  return n;
}

PlanNodePtr PlanNode::Sort(PlanNodePtr child,
                           std::vector<std::pair<BoundExprPtr, bool>> keys) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kSort;
  n->output_schema = child->output_schema;
  n->left = std::move(child);
  n->sort_keys = std::move(keys);
  return n;
}

PlanNodePtr PlanNode::Distinct(PlanNodePtr child) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kDistinct;
  n->output_schema = child->output_schema;
  n->left = std::move(child);
  return n;
}

PlanNodePtr PlanNode::Limit(PlanNodePtr child, int64_t limit) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kLimit;
  n->output_schema = child->output_schema;
  n->left = std::move(child);
  n->limit = limit;
  return n;
}

PlanNodePtr PlanNode::SubstituteParams(const PlanNodePtr& plan,
                                       const std::vector<Value>& params) {
  if (plan == nullptr) return nullptr;
  bool changed = false;
  auto sub_expr = [&](const BoundExprPtr& e) {
    BoundExprPtr s = fedcal::SubstituteParams(e, params);
    changed |= s != e;
    return s;
  };

  PlanNodePtr left = SubstituteParams(plan->left, params);
  PlanNodePtr right = SubstituteParams(plan->right, params);
  changed |= left != plan->left || right != plan->right;

  BoundExprPtr index_value = sub_expr(plan->index_value);
  BoundExprPtr predicate = sub_expr(plan->predicate);
  BoundExprPtr residual = sub_expr(plan->residual);
  std::vector<BoundExprPtr> projections = plan->projections;
  for (auto& p : projections) p = sub_expr(p);
  std::vector<BoundExprPtr> group_by = plan->group_by;
  for (auto& g : group_by) g = sub_expr(g);
  std::vector<AggItem> aggs = plan->aggs;
  for (auto& a : aggs) a.arg = sub_expr(a.arg);
  std::vector<std::pair<BoundExprPtr, bool>> sort_keys = plan->sort_keys;
  for (auto& k : sort_keys) k.first = sub_expr(k.first);

  // Always clone, even when nothing in this subtree referenced a param:
  // callers re-annotate (mutate) the substituted tree, so sharing
  // unchanged nodes with the cached template would race concurrent
  // Route() calls on the same prepared plan and dirty the template's own
  // estimates. Expressions stay shared — substitution never mutates them.
  (void)changed;
  auto node = std::make_shared<PlanNode>(*plan);
  node->left = std::move(left);
  node->right = std::move(right);
  node->index_value = std::move(index_value);
  node->predicate = std::move(predicate);
  node->residual = std::move(residual);
  node->projections = std::move(projections);
  node->group_by = std::move(group_by);
  node->aggs = std::move(aggs);
  node->sort_keys = std::move(sort_keys);
  return node;
}

PlanNodePtr PlanNode::DeepClone(const PlanNodePtr& plan) {
  if (plan == nullptr) return nullptr;
  auto node = std::make_shared<PlanNode>(*plan);
  node->left = DeepClone(plan->left);
  node->right = DeepClone(plan->right);
  return node;
}

}  // namespace fedcal
