#pragma once

namespace fedcal {

/// \brief Work-unit prices for each physical operation.
///
/// One "work unit" is an abstract unit of CPU effort; a server converts
/// accumulated work units to simulated seconds through its speed and load
/// multiplier. The optimizer's cost model uses the *same* constants over
/// *estimated* cardinalities, so estimated and observed costs agree exactly
/// when (a) cardinality estimates are perfect and (b) the server is idle —
/// precisely the baseline the paper's calibration factors are measured
/// against.
struct WorkCosts {
  double scan_row = 1.0;        ///< per row scanned (I/O)
  double scan_byte = 0.02;      ///< per byte scanned (I/O)
  double filter_row = 0.2;      ///< per row evaluated
  double project_expr = 0.05;   ///< per row per projection expression
  double hash_build_row = 0.3;  ///< per build-side row
  double hash_probe_row = 0.15; ///< per probe-side row
  double join_output_row = 0.1; ///< per emitted joined row
  double nlj_pair = 0.2;        ///< per compared pair (nested loop)
  double agg_update_row = 0.3;  ///< per input row aggregated
  double agg_group = 0.5;       ///< per output group
  double sort_row_log = 0.25;   ///< per row * log2(rows)
  double distinct_row = 0.3;    ///< per row deduplicated
  double index_probe = 4.0;     ///< per index lookup (I/O)
  double index_match_row = 1.2; ///< per matching row fetched (I/O)
};

/// \brief Which physical engine executes plans.
///
/// Both engines produce byte-identical results and identical ExecStats
/// (the work-unit accounting is the simulation's clock; it must not depend
/// on the host-side execution strategy). kRow is the reference
/// implementation; kColumnar is the vectorized engine (DESIGN.md §17).
enum class EngineKind { kRow, kColumnar };

/// \brief Execution limits and pricing used by the Executor.
struct ExecConfig {
  WorkCosts costs;
  /// Safety valve against runaway cross products; 0 disables the check.
  size_t max_intermediate_rows = 50'000'000;
  /// Physical engine selection (results and stats are engine-invariant).
  EngineKind engine = EngineKind::kRow;
  /// Rows per column chunk in the columnar engine.
  size_t batch_rows = 4096;
  /// Record per-operator runtime profiles (obs::OperatorProfile) for every
  /// execution that asks for one. Off by default; the off path costs one
  /// branch per operator, and results/stats/timings are identical either
  /// way (profiles observe the run, they never steer it).
  bool profile = false;
};

/// \brief Counters accumulated while executing one plan.
///
/// `work_units` is the total (CPU + I/O); `io_units` is the I/O share
/// (byte-scan charges). Servers convert the two shares to time through
/// separate effective speeds, so background load that hammers the disk
/// (the paper's "heavy update load") slows scan-heavy query types more
/// than CPU-bound ones.
struct ExecStats {
  double work_units = 0.0;  ///< total work (CPU + I/O)
  double io_units = 0.0;    ///< I/O portion of work_units
  size_t rows_scanned = 0;
  size_t rows_output = 0;     ///< rows in the final result
  size_t bytes_output = 0;    ///< bytes in the final result
  size_t operators_executed = 0;

  double cpu_units() const { return work_units - io_units; }

  void Merge(const ExecStats& other) {
    work_units += other.work_units;
    io_units += other.io_units;
    rows_scanned += other.rows_scanned;
    rows_output += other.rows_output;
    bytes_output += other.bytes_output;
    operators_executed += other.operators_executed;
  }
};

}  // namespace fedcal
