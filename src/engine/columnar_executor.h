#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/arena.h"
#include "common/result.h"
#include "engine/exec_config.h"
#include "engine/plan.h"
#include "expr/vector_eval.h"
#include "obs/operator_profile.h"
#include "storage/table.h"

namespace fedcal {

/// \brief Vectorized columnar plan executor.
///
/// One instance executes one query: Executor::Execute constructs it on the
/// stack when the config selects EngineKind::kColumnar, so the per-query
/// arena needs no locking even though the owning Executor is shared across
/// serving threads.
///
/// The contract with the row engine is strict equivalence: byte-identical
/// result tables (cell variants included) and bit-identical ExecStats
/// (the work-unit accounting is the simulation's clock; it must not depend
/// on the host-side execution strategy). Every work-unit charge below
/// mirrors the corresponding row-engine statement — same formula, same
/// floating-point accumulation order.
/// Results come back as columnar-backed Tables whose rows materialize only
/// if a consumer asks for them, so fragment results can be shipped and
/// merged without ever leaving columnar form.
class ColumnarExecutor {
 public:
  using TableResolver =
      std::function<Result<TablePtr>(const std::string& table_name)>;

  ColumnarExecutor(const TableResolver& resolver, const ExecConfig& config)
      : resolver_(resolver), config_(config), eval_(&arena_) {}

  Result<TablePtr> Execute(const PlanNodePtr& plan, ExecStats* stats);

  /// Profiling variant: records a per-operator tree when the config's
  /// profile flag is on and `profile_out` is non-null. Results and stats
  /// are identical either way.
  Result<TablePtr> Execute(const PlanNodePtr& plan, ExecStats* stats,
                           std::shared_ptr<obs::OperatorProfile>* profile_out);

 private:
  /// `parent` null = profiling off (the hot path); non-null = append this
  /// node's profile to parent->children.
  Result<ColumnarTablePtr> ExecNode(const PlanNode& node, ExecStats* stats,
                                    obs::OperatorProfile* parent);
  Result<ColumnarTablePtr> DispatchNode(const PlanNode& node, ExecStats* stats,
                                        obs::OperatorProfile* prof);

  Result<ColumnarTablePtr> ExecScan(const PlanNode& node,
                                    ExecStats* stats);
  Result<ColumnarTablePtr> ExecIndexScan(const PlanNode& node,
                                         ExecStats* stats);
  Result<ColumnarTablePtr> ExecFilter(const PlanNode& node, ExecStats* stats,
                                      obs::OperatorProfile* prof);
  Result<ColumnarTablePtr> ExecProject(const PlanNode& node, ExecStats* stats,
                                       obs::OperatorProfile* prof);
  Result<ColumnarTablePtr> ExecHashJoin(const PlanNode& node, ExecStats* stats,
                                        obs::OperatorProfile* prof);
  Result<ColumnarTablePtr> ExecNestedLoopJoin(const PlanNode& node,
                                              ExecStats* stats,
                                              obs::OperatorProfile* prof);
  Result<ColumnarTablePtr> ExecAggregate(const PlanNode& node,
                                         ExecStats* stats,
                                         obs::OperatorProfile* prof);
  Result<ColumnarTablePtr> ExecSort(const PlanNode& node, ExecStats* stats,
                                    obs::OperatorProfile* prof);
  Result<ColumnarTablePtr> ExecDistinct(const PlanNode& node, ExecStats* stats,
                                        obs::OperatorProfile* prof);
  Result<ColumnarTablePtr> ExecLimit(const PlanNode& node, ExecStats* stats,
                                     obs::OperatorProfile* prof);

  /// Scan charge shared by the root-scan fast path and ExecScan.
  void ChargeScan(const Table& table, ExecStats* stats) const;
  Status CheckSize(size_t rows) const;

  const TableResolver& resolver_;
  const ExecConfig& config_;
  Arena arena_;
  VectorEvaluator eval_;
};

}  // namespace fedcal
