#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/plan.h"
#include "storage/value.h"

namespace fedcal {

/// log2(n) clamped below at 1.0 — the sort work-unit scaling factor.
inline double Log2Rows(size_t n) {
  return n < 2 ? 1.0 : std::log2(static_cast<double>(n));
}

/// \brief Hash-map key wrapper so Rows can key unordered_map.
///
/// Shared by the row and columnar engines so join/group/distinct key
/// semantics (null handling, numeric cross-type equality) are identical by
/// construction.
struct RowKey {
  Row values;
  size_t hash;

  explicit RowKey(Row v) : values(std::move(v)), hash(HashRow(values)) {}
  bool operator==(const RowKey& o) const {
    if (hash != o.hash || values.size() != o.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool ln = values[i].is_null();
      const bool rn = o.values[i].is_null();
      if (ln != rn) return false;
      if (!ln && values[i].Compare(o.values[i]) != 0) return false;
    }
    return true;
  }
};
struct RowKeyHash {
  size_t operator()(const RowKey& k) const { return k.hash; }
};

/// \brief Accumulator for one aggregate function instance in one group.
///
/// The int_mode/isum/dsum transition sequence depends on the exact variant
/// of every input cell, so both engines feed it the same Values in the
/// same order and finalize to bit-identical results.
struct AggState {
  size_t count = 0;        // non-null inputs (or all rows for COUNT(*))
  bool int_mode = true;    // SUM stays integral until a double arrives
  int64_t isum = 0;
  double dsum = 0.0;
  Value min_v;
  Value max_v;

  void Update(const AggItem& item, const Value& v) {
    if (item.count_star) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    switch (item.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.is_int64() && int_mode) {
          isum += v.AsInt64();
        } else {
          if (int_mode) {
            dsum = static_cast<double>(isum);
            int_mode = false;
          }
          dsum += v.AsDouble();
        }
        break;
      case AggFunc::kMin:
        if (min_v.is_null() || v < min_v) min_v = v;
        break;
      case AggFunc::kMax:
        if (max_v.is_null() || max_v < v) max_v = v;
        break;
    }
  }

  Value Finalize(const AggItem& item) const {
    switch (item.func) {
      case AggFunc::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFunc::kSum:
        if (count == 0) return Value::Null_();
        if (int_mode && item.result_type == DataType::kInt64) {
          return Value(isum);
        }
        return Value(int_mode ? static_cast<double>(isum) : dsum);
      case AggFunc::kAvg: {
        if (count == 0) return Value::Null_();
        const double total = int_mode ? static_cast<double>(isum) : dsum;
        return Value(total / static_cast<double>(count));
      }
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
    }
    return Value::Null_();
  }
};

}  // namespace fedcal
