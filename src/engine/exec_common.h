#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "engine/exec_config.h"
#include "engine/plan.h"
#include "obs/operator_profile.h"
#include "storage/value.h"

namespace fedcal {

/// log2(n) clamped below at 1.0 — the sort work-unit scaling factor.
inline double Log2Rows(size_t n) {
  return n < 2 ? 1.0 : std::log2(static_cast<double>(n));
}

/// \brief Records one operator's profile node around its execution.
///
/// Shared by both engines so the tree shape, the row accounting, and the
/// self-vs-cumulative split are identical by construction. Construct
/// before dispatching the node (snapshots the stats and the wall clock),
/// pass prof() as the parent for the node's child recursion, and Finish()
/// once the node has produced its result. Instantiated only on the
/// profiling path — the off path never reaches it, so its cost is
/// irrelevant to unprofiled runs.
class OperatorProfileScope {
 public:
  OperatorProfileScope(const PlanNode& node, const ExecStats& stats)
      : prof_(std::make_shared<obs::OperatorProfile>()),
        work0_(stats.work_units),
        io0_(stats.io_units),
        scanned0_(stats.rows_scanned),
        wall0_(std::chrono::steady_clock::now()) {
    prof_->op = PlanKindName(node.kind);
    prof_->detail = node.Describe();
    prof_->estimated_rows = node.estimated_rows;
  }

  obs::OperatorProfile* prof() { return prof_.get(); }

  /// Seals the node: deltas vs the construction snapshot, rows_in from the
  /// children (or the scan counter for leaves), the self split, both
  /// selectivities; then appends the node to `parent`.
  void Finish(const ExecStats& stats, uint64_t rows_out, uint64_t batches,
              uint64_t arena_bytes, obs::OperatorProfile* parent) {
    prof_->rows_out = rows_out;
    prof_->batches = batches;
    prof_->arena_bytes = arena_bytes;
    prof_->cum_work_units = stats.work_units - work0_;
    prof_->cum_io_units = stats.io_units - io0_;
    prof_->cum_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0_)
            .count();
    double child_work = 0.0;
    double child_io = 0.0;
    double child_wall = 0.0;
    double child_est = 0.0;
    uint64_t child_rows = 0;
    for (const auto& c : prof_->children) {
      child_work += c->cum_work_units;
      child_io += c->cum_io_units;
      child_wall += c->cum_wall_s;
      child_est += c->estimated_rows;
      child_rows += c->rows_out;
    }
    prof_->self_work_units = prof_->cum_work_units - child_work;
    prof_->self_io_units = prof_->cum_io_units - child_io;
    prof_->self_wall_s = std::max(0.0, prof_->cum_wall_s - child_wall);
    if (prof_->children.empty()) {
      // Leaves consume storage rows: the scan-counter delta is their input.
      prof_->rows_in = stats.rows_scanned - scanned0_;
      prof_->est_selectivity = 1.0;
    } else {
      prof_->rows_in = child_rows;
      prof_->est_selectivity =
          child_est > 0.0 ? prof_->estimated_rows / child_est : 1.0;
    }
    prof_->obs_selectivity =
        prof_->rows_in > 0 ? static_cast<double>(rows_out) /
                                 static_cast<double>(prof_->rows_in)
                           : 1.0;
    if (parent != nullptr) parent->children.push_back(std::move(prof_));
  }

 private:
  std::shared_ptr<obs::OperatorProfile> prof_;
  double work0_;
  double io0_;
  size_t scanned0_;
  std::chrono::steady_clock::time_point wall0_;
};

/// \brief Hash-map key wrapper so Rows can key unordered_map.
///
/// Shared by the row and columnar engines so join/group/distinct key
/// semantics (null handling, numeric cross-type equality) are identical by
/// construction.
struct RowKey {
  Row values;
  size_t hash;

  explicit RowKey(Row v) : values(std::move(v)), hash(HashRow(values)) {}
  bool operator==(const RowKey& o) const {
    if (hash != o.hash || values.size() != o.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool ln = values[i].is_null();
      const bool rn = o.values[i].is_null();
      if (ln != rn) return false;
      if (!ln && values[i].Compare(o.values[i]) != 0) return false;
    }
    return true;
  }
};
struct RowKeyHash {
  size_t operator()(const RowKey& k) const { return k.hash; }
};

/// \brief Accumulator for one aggregate function instance in one group.
///
/// The int_mode/isum/dsum transition sequence depends on the exact variant
/// of every input cell, so both engines feed it the same Values in the
/// same order and finalize to bit-identical results.
struct AggState {
  size_t count = 0;        // non-null inputs (or all rows for COUNT(*))
  bool int_mode = true;    // SUM stays integral until a double arrives
  int64_t isum = 0;
  double dsum = 0.0;
  Value min_v;
  Value max_v;

  void Update(const AggItem& item, const Value& v) {
    if (item.count_star) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    switch (item.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.is_int64() && int_mode) {
          isum += v.AsInt64();
        } else {
          if (int_mode) {
            dsum = static_cast<double>(isum);
            int_mode = false;
          }
          dsum += v.AsDouble();
        }
        break;
      case AggFunc::kMin:
        if (min_v.is_null() || v < min_v) min_v = v;
        break;
      case AggFunc::kMax:
        if (max_v.is_null() || max_v < v) max_v = v;
        break;
    }
  }

  Value Finalize(const AggItem& item) const {
    switch (item.func) {
      case AggFunc::kCount:
        return Value(static_cast<int64_t>(count));
      case AggFunc::kSum:
        if (count == 0) return Value::Null_();
        if (int_mode && item.result_type == DataType::kInt64) {
          return Value(isum);
        }
        return Value(int_mode ? static_cast<double>(isum) : dsum);
      case AggFunc::kAvg: {
        if (count == 0) return Value::Null_();
        const double total = int_mode ? static_cast<double>(isum) : dsum;
        return Value(total / static_cast<double>(count));
      }
      case AggFunc::kMin:
        return min_v;
      case AggFunc::kMax:
        return max_v;
    }
    return Value::Null_();
  }
};

}  // namespace fedcal
