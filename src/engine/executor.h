#pragma once

#include <functional>
#include <memory>

#include "common/result.h"
#include "engine/exec_config.h"
#include "engine/plan.h"
#include "obs/operator_profile.h"
#include "storage/table.h"

namespace fedcal {

/// \brief Executes physical plans against in-memory tables, charging work
/// units per the ExecConfig price list.
///
/// Scan nodes reference tables by name; the executor resolves them through
/// the caller-supplied TableResolver, so the same executor serves both
/// simulated remote servers (resolving their own base tables) and the
/// integrator (resolving materialized fragment results).
class Executor {
 public:
  using TableResolver =
      std::function<Result<TablePtr>(const std::string& table_name)>;

  Executor(TableResolver resolver, ExecConfig config = {})
      : resolver_(std::move(resolver)), config_(config) {}

  /// Runs the plan to completion, materializing the result. `stats` (may be
  /// null) receives the work-unit accounting for the whole tree.
  Result<TablePtr> Execute(const PlanNodePtr& plan, ExecStats* stats) const;

  /// Like Execute, additionally recording a per-operator profile tree when
  /// `config().profile` is on and `profile_out` is non-null (otherwise
  /// `*profile_out` is reset to null). Results, stats, and their
  /// accumulation order are identical with profiling on or off.
  Result<TablePtr> Execute(
      const PlanNodePtr& plan, ExecStats* stats,
      std::shared_ptr<obs::OperatorProfile>* profile_out) const;

  const ExecConfig& config() const { return config_; }

 private:
  /// `parent` null = profiling off (the hot path); non-null = append this
  /// node's profile to parent->children.
  Result<TablePtr> ExecuteNode(const PlanNode& node, ExecStats* stats,
                               obs::OperatorProfile* parent) const;
  Result<TablePtr> DispatchNode(const PlanNode& node, ExecStats* stats,
                                obs::OperatorProfile* prof) const;

  Result<TablePtr> ExecScan(const PlanNode& node, ExecStats* stats) const;
  Result<TablePtr> ExecIndexScan(const PlanNode& node,
                                 ExecStats* stats) const;
  Result<TablePtr> ExecFilter(const PlanNode& node, ExecStats* stats,
                              obs::OperatorProfile* prof) const;
  Result<TablePtr> ExecProject(const PlanNode& node, ExecStats* stats,
                               obs::OperatorProfile* prof) const;
  Result<TablePtr> ExecHashJoin(const PlanNode& node, ExecStats* stats,
                                obs::OperatorProfile* prof) const;
  Result<TablePtr> ExecNestedLoopJoin(const PlanNode& node, ExecStats* stats,
                                      obs::OperatorProfile* prof) const;
  Result<TablePtr> ExecAggregate(const PlanNode& node, ExecStats* stats,
                                 obs::OperatorProfile* prof) const;
  Result<TablePtr> ExecSort(const PlanNode& node, ExecStats* stats,
                            obs::OperatorProfile* prof) const;
  Result<TablePtr> ExecDistinct(const PlanNode& node, ExecStats* stats,
                                obs::OperatorProfile* prof) const;
  Result<TablePtr> ExecLimit(const PlanNode& node, ExecStats* stats,
                             obs::OperatorProfile* prof) const;

  Status CheckSize(size_t rows) const;

  TableResolver resolver_;
  ExecConfig config_;
};

}  // namespace fedcal
