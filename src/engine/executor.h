#pragma once

#include <functional>

#include "common/result.h"
#include "engine/exec_config.h"
#include "engine/plan.h"
#include "storage/table.h"

namespace fedcal {

/// \brief Executes physical plans against in-memory tables, charging work
/// units per the ExecConfig price list.
///
/// Scan nodes reference tables by name; the executor resolves them through
/// the caller-supplied TableResolver, so the same executor serves both
/// simulated remote servers (resolving their own base tables) and the
/// integrator (resolving materialized fragment results).
class Executor {
 public:
  using TableResolver =
      std::function<Result<TablePtr>(const std::string& table_name)>;

  Executor(TableResolver resolver, ExecConfig config = {})
      : resolver_(std::move(resolver)), config_(config) {}

  /// Runs the plan to completion, materializing the result. `stats` (may be
  /// null) receives the work-unit accounting for the whole tree.
  Result<TablePtr> Execute(const PlanNodePtr& plan, ExecStats* stats) const;

  const ExecConfig& config() const { return config_; }

 private:
  Result<TablePtr> ExecuteNode(const PlanNode& node, ExecStats* stats) const;

  Result<TablePtr> ExecScan(const PlanNode& node, ExecStats* stats) const;
  Result<TablePtr> ExecIndexScan(const PlanNode& node,
                                 ExecStats* stats) const;
  Result<TablePtr> ExecFilter(const PlanNode& node, ExecStats* stats) const;
  Result<TablePtr> ExecProject(const PlanNode& node, ExecStats* stats) const;
  Result<TablePtr> ExecHashJoin(const PlanNode& node, ExecStats* stats) const;
  Result<TablePtr> ExecNestedLoopJoin(const PlanNode& node,
                                      ExecStats* stats) const;
  Result<TablePtr> ExecAggregate(const PlanNode& node,
                                 ExecStats* stats) const;
  Result<TablePtr> ExecSort(const PlanNode& node, ExecStats* stats) const;
  Result<TablePtr> ExecDistinct(const PlanNode& node,
                                ExecStats* stats) const;
  Result<TablePtr> ExecLimit(const PlanNode& node, ExecStats* stats) const;

  Status CheckSize(size_t rows) const;

  TableResolver resolver_;
  ExecConfig config_;
};

}  // namespace fedcal
