#include "sql/lexer.h"

#include <cctype>
#include <stdexcept>
#include <unordered_set>

#include "common/string_util.h"

namespace fedcal {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kw = {
      "SELECT", "FROM",  "WHERE", "GROUP",  "BY",    "HAVING", "ORDER",
      "LIMIT",  "JOIN",  "INNER", "ON",     "AS",    "AND",    "OR",
      "NOT",    "COUNT", "SUM",   "AVG",    "MIN",   "MAX",    "ASC",
      "DESC",   "NULL",  "IS",    "DISTINCT", "BETWEEN", "IN", "LIKE"};
  return kw;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      std::string upper = ToUpper(word);
      Token t;
      t.position = start;
      if (Keywords().count(upper)) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(sql[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(sql[j])))
            ++j;
        }
      }
      Token t;
      t.position = start;
      t.text = sql.substr(i, j - i);
      if (is_double) {
        t.type = TokenType::kDoubleLiteral;
        t.double_value = std::stod(t.text);
      } else {
        t.type = TokenType::kIntLiteral;
        try {
          t.int_value = std::stoll(t.text);
        } catch (const std::out_of_range&) {
          return Status::ParseError("integer literal out of range: " + t.text);
        }
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::ParseError(StringFormat(
            "unterminated string literal at offset %zu", start));
      }
      Token t;
      t.position = start;
      t.type = TokenType::kStringLiteral;
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Operators and punctuation (two-char first).
    auto push_op = [&](const std::string& op) {
      Token t;
      t.position = start;
      t.type = TokenType::kOperator;
      t.text = op;
      tokens.push_back(std::move(t));
      i += op.size();
    };
    if (i + 1 < n) {
      const std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        push_op(two == "!=" ? "<>" : two);
        continue;
      }
    }
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '+':
      case '-':
      case '*':
      case '/':
      case '(':
      case ')':
      case ',':
      case '.':
        push_op(std::string(1, c));
        continue;
      default:
        return Status::ParseError(StringFormat(
            "unexpected character '%c' at offset %zu", c, start));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace fedcal
