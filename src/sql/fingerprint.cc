#include "sql/fingerprint.h"

#include <functional>

namespace fedcal {

namespace {

/// Re-quotes a string literal for canonical text ('' escapes a quote,
/// mirroring the lexer).
std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

bool IsLiteral(const Token& t) {
  return t.type == TokenType::kIntLiteral ||
         t.type == TokenType::kDoubleLiteral ||
         t.type == TokenType::kStringLiteral;
}

}  // namespace

std::vector<int> AssignParamOrdinals(const std::vector<Token>& tokens) {
  std::vector<int> ordinals(tokens.size(), -1);
  int next = 0;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsLiteral(tokens[i])) continue;
    if (i > 0 && tokens[i - 1].IsOperator("-")) continue;
    if (i > 0 && tokens[i - 1].IsKeyword("LIMIT")) continue;
    ordinals[i] = next++;
  }
  return ordinals;
}

QueryFingerprint FingerprintSql(const std::string& sql) {
  QueryFingerprint fp;
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return fp;

  const std::vector<int> ordinals = AssignParamOrdinals(*tokens);
  for (size_t i = 0; i < tokens->size(); ++i) {
    const Token& t = (*tokens)[i];
    if (t.type == TokenType::kEnd) break;
    if (!fp.canonical_sql.empty()) fp.canonical_sql += " ";
    if (ordinals[i] >= 0) {
      switch (t.type) {
        case TokenType::kIntLiteral:
          fp.canonical_sql += "?int";
          fp.params.emplace_back(t.int_value);
          break;
        case TokenType::kDoubleLiteral:
          fp.canonical_sql += "?dbl";
          fp.params.emplace_back(t.double_value);
          break;
        default:
          fp.canonical_sql += "?str";
          fp.params.emplace_back(t.text);
          break;
      }
      continue;
    }
    // Unparameterized literals keep their value in the canonical text so
    // instances with different excluded literals get distinct entries.
    fp.canonical_sql +=
        t.type == TokenType::kStringLiteral ? QuoteString(t.text) : t.text;
  }
  fp.hash = std::hash<std::string>{}(fp.canonical_sql);
  fp.ok = true;
  return fp;
}

}  // namespace fedcal
