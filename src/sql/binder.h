#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/bound_expr.h"
#include "sql/ast.h"
#include "storage/schema.h"

namespace fedcal {

/// \brief One FROM-clause table after resolution: where its columns sit in
/// the flattened input row.
struct TableBinding {
  std::string alias;       ///< effective alias in the query
  std::string table_name;  ///< resolved nickname / physical table name
  Schema schema;           ///< the table's own schema
  size_t slot_offset = 0;  ///< first column's slot in the flattened row
};

/// \brief A bound aggregate call: function + bound argument (over the
/// pre-aggregation input schema).
struct BoundAggSpec {
  AggFunc func = AggFunc::kCount;
  bool count_star = false;
  BoundExprPtr arg;  ///< nullptr for COUNT(*)
  DataType result_type = DataType::kInt64;
  std::string display_name;
  /// Structural key used to deduplicate identical agg calls.
  std::string dedup_key;
};

/// \brief Fully bound query: everything the planner needs, with all names
/// resolved to row slots.
///
/// Pipeline contract (matches the physical plan shape the engine builds):
///   scan/join produces rows matching `input_schema`;
///   `where` filters those rows;
///   if `has_aggregate`: group by `group_by` (input-schema exprs), compute
///     `aggs`; the post-agg row is [group values..., agg results...];
///   `outputs` are evaluated over the post-agg row (aggregate queries) or
///     the input row (plain queries) and produce `output_schema`;
///   `having` is evaluated over the post-agg row;
///   `order_by` expressions are evaluated over the *output* row.
struct BoundQuery {
  std::vector<TableBinding> tables;
  Schema input_schema;  ///< qualified "alias.column" names

  BoundExprPtr where;  ///< nullptr if absent

  bool has_aggregate = false;
  std::vector<BoundExprPtr> group_by;
  std::vector<BoundAggSpec> aggs;
  BoundExprPtr having;  ///< over post-agg row; nullptr if absent

  std::vector<BoundExprPtr> outputs;  ///< see pipeline contract above
  Schema output_schema;
  bool distinct = false;

  std::vector<std::pair<BoundExprPtr, bool>> order_by;  ///< (expr, desc)
  std::optional<int64_t> limit;

  /// Schema of the intermediate post-aggregation row.
  Schema PostAggSchema() const;
};

/// \brief Resolves a parsed SELECT against the schemas of its FROM tables.
///
/// `table_schemas[i]` must be the schema of `stmt.from[i]`'s resolved table
/// (the caller — catalog or wrapper — performs nickname resolution).
Result<BoundQuery> BindQuery(const SelectStmt& stmt,
                             const std::vector<Schema>& table_schemas);

}  // namespace fedcal
