#pragma once

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace fedcal {

/// \brief Parses one SELECT statement (optionally semicolon-terminated).
///
/// Supported grammar (a pragmatic SQL subset sufficient for the paper's
/// workloads — multi-way equijoins, range/equality predicates, grouping and
/// aggregation):
///
///   SELECT [DISTINCT] item (',' item)*
///   FROM table [alias] ((',' table [alias]) | ([INNER] JOIN table [alias]
///        ON expr))*
///   [WHERE expr] [GROUP BY expr (',' expr)*] [HAVING expr]
///   [ORDER BY expr [ASC|DESC] (',' ...)*] [LIMIT n]
///
/// item := '*' | expr [[AS] alias]
/// expr  := disjunctions of conjunctions of (NOT)? comparisons over
///          arithmetic (+ - * /) on columns, literals and aggregate calls
///          (COUNT(*), COUNT/SUM/AVG/MIN/MAX(expr)), plus IS [NOT] NULL.
Result<SelectStmt> ParseSelect(const std::string& sql);

}  // namespace fedcal
