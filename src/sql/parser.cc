#include "sql/parser.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"

namespace fedcal {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)),
        param_ordinals_(AssignParamOrdinals(tokens_)) {}

  Result<SelectStmt> ParseStatement() {
    FEDCAL_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelectBody());
    // Optional trailing semicolon would have been rejected by the lexer;
    // just require end of input.
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchOperator(const char* op) {
    if (Peek().IsOperator(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(StringFormat("%s (near offset %zu, token '%s')",
                                           msg.c_str(), Peek().position,
                                           Peek().text.c_str()));
  }

  Result<SelectStmt> ParseSelectBody() {
    SelectStmt stmt;
    if (!MatchKeyword("SELECT")) return Err("expected SELECT");
    if (MatchKeyword("DISTINCT")) stmt.distinct = true;

    // Select list.
    while (true) {
      SelectItem item;
      if (MatchOperator("*")) {
        item.is_star = true;
      } else {
        FEDCAL_ASSIGN_OR_RETURN(item.expr, ParseExprTop());
        if (MatchKeyword("AS")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Advance().text;
        }
      }
      stmt.items.push_back(std::move(item));
      if (!MatchOperator(",")) break;
    }

    if (!MatchKeyword("FROM")) return Err("expected FROM");
    FEDCAL_RETURN_NOT_OK(ParseFromClause(&stmt));

    if (MatchKeyword("WHERE")) {
      FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr w, ParseExprTop());
      stmt.where = stmt.where
                       ? ParseExpr::MakeBinary(BinaryOp::kAnd, stmt.where, w)
                       : w;
    }

    if (MatchKeyword("GROUP")) {
      if (!MatchKeyword("BY")) return Err("expected BY after GROUP");
      while (true) {
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr g, ParseExprTop());
        stmt.group_by.push_back(std::move(g));
        if (!MatchOperator(",")) break;
      }
    }

    if (MatchKeyword("HAVING")) {
      FEDCAL_ASSIGN_OR_RETURN(stmt.having, ParseExprTop());
    }

    if (MatchKeyword("ORDER")) {
      if (!MatchKeyword("BY")) return Err("expected BY after ORDER");
      while (true) {
        OrderItem o;
        FEDCAL_ASSIGN_OR_RETURN(o.expr, ParseExprTop());
        if (MatchKeyword("DESC")) {
          o.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(o));
        if (!MatchOperator(",")) break;
      }
    }

    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Err("expected integer after LIMIT");
      }
      stmt.limit = Advance().int_value;
    }
    return stmt;
  }

  Status ParseFromClause(SelectStmt* stmt) {
    FEDCAL_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    while (true) {
      if (MatchOperator(",")) {
        FEDCAL_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt->from.push_back(std::move(t));
        continue;
      }
      const bool inner = Peek().IsKeyword("INNER");
      if (inner || Peek().IsKeyword("JOIN")) {
        if (inner) {
          Advance();
          if (!Peek().IsKeyword("JOIN")) {
            return Err("expected JOIN after INNER");
          }
        }
        Advance();  // JOIN
        FEDCAL_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt->from.push_back(std::move(t));
        if (!MatchKeyword("ON")) return Err("expected ON");
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr cond, ParseExprTop());
        stmt->where =
            stmt->where
                ? ParseExpr::MakeBinary(BinaryOp::kAnd, stmt->where, cond)
                : cond;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected table name");
    }
    TableRef t;
    t.table = Advance().text;
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected alias after AS");
      }
      t.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      t.alias = Advance().text;
    }
    return t;
  }

  // expr := or
  Result<ParseExprPtr> ParseExprTop() { return ParseOr(); }

  Result<ParseExprPtr> ParseOr() {
    FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAnd());
    while (MatchKeyword("OR")) {
      FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAnd());
      left = ParseExpr::MakeBinary(BinaryOp::kOr, left, right);
    }
    return left;
  }

  Result<ParseExprPtr> ParseAnd() {
    FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseNot());
    while (MatchKeyword("AND")) {
      FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseNot());
      left = ParseExpr::MakeBinary(BinaryOp::kAnd, left, right);
    }
    return left;
  }

  Result<ParseExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr inner, ParseNot());
      return ParseExpr::MakeUnary(UnaryOp::kNot, inner);
    }
    return ParseComparison();
  }

  Result<ParseExprPtr> ParseComparison() {
    FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAdditive());
    if (MatchKeyword("IS")) {
      const bool negated = MatchKeyword("NOT");
      if (!MatchKeyword("NULL")) return Err("expected NULL after IS");
      return ParseExpr::MakeUnary(
          negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull, left);
    }
    // x [NOT] BETWEEN a AND b / [NOT] IN (v, ...) / [NOT] LIKE 'pat'.
    {
      const bool negated = Peek().IsKeyword("NOT") &&
                           (Peek(1).IsKeyword("BETWEEN") ||
                            Peek(1).IsKeyword("IN") ||
                            Peek(1).IsKeyword("LIKE"));
      if (negated) Advance();  // NOT
      if (MatchKeyword("BETWEEN")) {
        // Desugars to (left >= lo AND left <= hi).
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr lo, ParseAdditive());
        if (!MatchKeyword("AND")) {
          return Err("expected AND in BETWEEN");
        }
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr hi, ParseAdditive());
        ParseExprPtr range = ParseExpr::MakeBinary(
            BinaryOp::kAnd,
            ParseExpr::MakeBinary(BinaryOp::kGe, left, lo),
            ParseExpr::MakeBinary(BinaryOp::kLe, left, hi));
        return negated ? ParseExpr::MakeUnary(UnaryOp::kNot, range)
                       : range;
      }
      if (MatchKeyword("IN")) {
        // Desugars to an OR chain of equalities.
        if (!MatchOperator("(")) return Err("expected ( after IN");
        ParseExprPtr chain;
        while (true) {
          FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr v, ParseAdditive());
          ParseExprPtr eq = ParseExpr::MakeBinary(BinaryOp::kEq, left, v);
          chain = chain ? ParseExpr::MakeBinary(BinaryOp::kOr, chain, eq)
                        : eq;
          if (!MatchOperator(",")) break;
        }
        if (!MatchOperator(")")) return Err("expected ) after IN list");
        return negated ? ParseExpr::MakeUnary(UnaryOp::kNot, chain)
                       : chain;
      }
      if (MatchKeyword("LIKE")) {
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr pattern, ParseAdditive());
        ParseExprPtr like =
            ParseExpr::MakeBinary(BinaryOp::kLike, left, pattern);
        return negated ? ParseExpr::MakeUnary(UnaryOp::kNot, like) : like;
      }
      if (negated) return Err("expected BETWEEN, IN or LIKE after NOT");
    }
    static const std::pair<const char*, BinaryOp> cmps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& [text, op] : cmps) {
      if (MatchOperator(text)) {
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAdditive());
        return ParseExpr::MakeBinary(op, left, right);
      }
    }
    return left;
  }

  Result<ParseExprPtr> ParseAdditive() {
    FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseMultiplicative());
    while (true) {
      if (MatchOperator("+")) {
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr r, ParseMultiplicative());
        left = ParseExpr::MakeBinary(BinaryOp::kAdd, left, r);
      } else if (MatchOperator("-")) {
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr r, ParseMultiplicative());
        left = ParseExpr::MakeBinary(BinaryOp::kSub, left, r);
      } else {
        break;
      }
    }
    return left;
  }

  Result<ParseExprPtr> ParseMultiplicative() {
    FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr left, ParseUnary());
    while (true) {
      if (MatchOperator("*")) {
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr r, ParseUnary());
        left = ParseExpr::MakeBinary(BinaryOp::kMul, left, r);
      } else if (MatchOperator("/")) {
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr r, ParseUnary());
        left = ParseExpr::MakeBinary(BinaryOp::kDiv, left, r);
      } else {
        break;
      }
    }
    return left;
  }

  Result<ParseExprPtr> ParseUnary() {
    if (MatchOperator("-")) {
      FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr inner, ParseUnary());
      // Fold negation into numeric literals for cleaner fingerprints.
      if (inner->kind == ParseExpr::Kind::kLiteral &&
          inner->literal.is_numeric()) {
        if (inner->literal.is_int64()) {
          return ParseExpr::MakeLiteral(Value(-inner->literal.AsInt64()));
        }
        return ParseExpr::MakeLiteral(Value(-inner->literal.AsDouble()));
      }
      return ParseExpr::MakeUnary(UnaryOp::kNeg, inner);
    }
    return ParsePrimary();
  }

  /// Literal expression tagged with the fingerprint pass's parameter
  /// ordinal for the token at `tok_idx` (-1 when not parameterized).
  ParseExprPtr MakeTaggedLiteral(Value v, size_t tok_idx) const {
    ParseExprPtr e = ParseExpr::MakeLiteral(std::move(v));
    e->param_index = param_ordinals_[tok_idx];
    return e;
  }

  Result<ParseExprPtr> ParsePrimary() {
    const Token& t = Peek();
    const size_t tok_idx = pos_;
    switch (t.type) {
      case TokenType::kIntLiteral:
        Advance();
        return MakeTaggedLiteral(Value(t.int_value), tok_idx);
      case TokenType::kDoubleLiteral:
        Advance();
        return MakeTaggedLiteral(Value(t.double_value), tok_idx);
      case TokenType::kStringLiteral:
        Advance();
        return MakeTaggedLiteral(Value(t.text), tok_idx);
      case TokenType::kKeyword: {
        if (t.text == "NULL") {
          Advance();
          return ParseExpr::MakeLiteral(Value::Null_());
        }
        AggFunc f;
        if (t.text == "COUNT") {
          f = AggFunc::kCount;
        } else if (t.text == "SUM") {
          f = AggFunc::kSum;
        } else if (t.text == "AVG") {
          f = AggFunc::kAvg;
        } else if (t.text == "MIN") {
          f = AggFunc::kMin;
        } else if (t.text == "MAX") {
          f = AggFunc::kMax;
        } else {
          return Err("unexpected keyword in expression");
        }
        Advance();
        if (!MatchOperator("(")) {
          return Err("expected ( after aggregate function");
        }
        if (f == AggFunc::kCount && MatchOperator("*")) {
          if (!MatchOperator(")")) return Err("expected )");
          return ParseExpr::MakeAgg(f, nullptr, /*star=*/true);
        }
        FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr arg, ParseExprTop());
        if (!MatchOperator(")")) return Err("expected )");
        return ParseExpr::MakeAgg(f, std::move(arg), /*star=*/false);
      }
      case TokenType::kIdentifier: {
        Advance();
        if (MatchOperator(".")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Err("expected column name after '.'");
          }
          const std::string column = Advance().text;
          return ParseExpr::MakeColumn(t.text, column);
        }
        return ParseExpr::MakeColumn("", t.text);
      }
      case TokenType::kOperator:
        if (t.IsOperator("(")) {
          Advance();
          FEDCAL_ASSIGN_OR_RETURN(ParseExprPtr inner, ParseExprTop());
          if (!MatchOperator(")")) return Err("expected )");
          return inner;
        }
        return Err("unexpected operator in expression");
      case TokenType::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  std::vector<Token> tokens_;
  std::vector<int> param_ordinals_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmt> ParseSelect(const std::string& sql) {
  FEDCAL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace fedcal
