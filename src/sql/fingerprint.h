#pragma once

#include <string>
#include <vector>

#include "sql/lexer.h"
#include "storage/value.h"

namespace fedcal {

/// \brief Literal-normalized identity of a SQL statement: the key of the
/// prepared-plan cache.
///
/// Canonicalization is purely lexical — tokenize, upper-case keywords
/// (the lexer already does), collapse whitespace, and replace
/// parameterizable literal tokens with type-tagged markers (`?int`,
/// `?dbl`, `?str`). Two statements of the same shape that differ only in
/// literal values (e.g. QT1 instances with different selection
/// parameters) produce the same `canonical_sql`; statements of different
/// shape can never collide because the key is the full canonical text,
/// not a hash.
struct QueryFingerprint {
  /// False when the input could not be tokenized (the statement is about
  /// to fail parsing anyway; such statements bypass the cache).
  bool ok = false;
  /// Canonical text, literals replaced by markers. Cache key.
  std::string canonical_sql;
  /// The literal values extracted during canonicalization, in token
  /// order. `params[i]` corresponds to the i-th marker.
  std::vector<Value> params;
  /// std::hash of canonical_sql (display / metrics convenience only; the
  /// cache compares full strings).
  size_t hash = 0;
};

/// \brief Parameter ordinal per token: `result[i]` is the parameter slot
/// of `tokens[i]`, or -1 when that token is not parameterized.
///
/// This single function defines which literals become parameters; the
/// parser consults the same assignment when tagging literal ParseExprs,
/// so token-order ordinals stay consistent with AST positions even when
/// the parser reorders clauses (JOIN ON conditions fold into WHERE).
///
/// Rules: int/double/string literal tokens are parameterized EXCEPT
///   - a literal immediately preceded by a `-` operator token (the parser
///     folds unary minus into the literal value, so substituting the
///     unsigned token would flip signs; binary minus is excluded too —
///     always safe, merely less sharing), and
///   - the integer after LIMIT (stored as a plain int64 on the statement,
///     not as an expression, so it cannot be substituted at route time).
std::vector<int> AssignParamOrdinals(const std::vector<Token>& tokens);

/// Computes the fingerprint of a SQL string. Never fails: a statement the
/// lexer rejects yields `ok == false`.
QueryFingerprint FingerprintSql(const std::string& sql);

}  // namespace fedcal
