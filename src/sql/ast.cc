#include "sql/ast.h"

#include "common/string_util.h"

namespace fedcal {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

ParseExprPtr ParseExpr::MakeLiteral(Value v) {
  auto e = std::make_shared<ParseExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ParseExprPtr ParseExpr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_shared<ParseExpr>();
  e->kind = Kind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ParseExprPtr ParseExpr::MakeBinary(BinaryOp op, ParseExprPtr l,
                                   ParseExprPtr r) {
  auto e = std::make_shared<ParseExpr>();
  e->kind = Kind::kBinary;
  e->bop = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ParseExprPtr ParseExpr::MakeUnary(UnaryOp op, ParseExprPtr operand) {
  auto e = std::make_shared<ParseExpr>();
  e->kind = Kind::kUnary;
  e->uop = op;
  e->left = std::move(operand);
  return e;
}

ParseExprPtr ParseExpr::MakeAgg(AggFunc f, ParseExprPtr arg, bool star) {
  auto e = std::make_shared<ParseExpr>();
  e->kind = Kind::kAggCall;
  e->agg = f;
  e->agg_arg = std::move(arg);
  e->count_star = star;
  return e;
}

bool ParseExpr::ContainsAggregate() const {
  switch (kind) {
    case Kind::kAggCall:
      return true;
    case Kind::kBinary:
      return left->ContainsAggregate() || right->ContainsAggregate();
    case Kind::kUnary:
      return left->ContainsAggregate();
    default:
      return false;
  }
}

std::string ParseExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case Kind::kBinary: {
      std::string out = "(";
      out += left->ToString();
      out += " ";
      out += BinaryOpName(bop);
      out += " ";
      out += right->ToString();
      out += ")";
      return out;
    }
    case Kind::kUnary: {
      std::string out = "(";
      if (uop == UnaryOp::kIsNull || uop == UnaryOp::kIsNotNull) {
        out += left->ToString();
        out += " ";
        out += UnaryOpName(uop);
      } else {
        out += UnaryOpName(uop);
        out += " ";
        out += left->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kAggCall:
      if (count_star) return "COUNT(*)";
      return std::string(AggFuncName(agg)) + "(" + agg_arg->ToString() + ")";
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> parts;
  for (const auto& item : items) {
    if (item.is_star) {
      parts.push_back("*");
      continue;
    }
    std::string s = item.expr->ToString();
    if (!item.alias.empty()) s += " AS " + item.alias;
    parts.push_back(std::move(s));
  }
  out += Join(parts, ", ");
  out += " FROM ";
  parts.clear();
  for (const auto& t : from) {
    std::string s = t.table;
    if (!t.alias.empty() && t.alias != t.table) s += " " + t.alias;
    parts.push_back(std::move(s));
  }
  out += Join(parts, ", ");
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    parts.clear();
    for (const auto& g : group_by) parts.push_back(g->ToString());
    out += " GROUP BY " + Join(parts, ", ");
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    parts.clear();
    for (const auto& o : order_by) {
      parts.push_back(o.expr->ToString() + (o.descending ? " DESC" : ""));
    }
    out += " ORDER BY " + Join(parts, ", ");
  }
  if (limit.has_value()) out += StringFormat(" LIMIT %lld",
                                             static_cast<long long>(*limit));
  return out;
}

namespace {
size_t Mix(size_t h, size_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}
}  // namespace

size_t SignatureOf(const ParseExpr& e, bool normalize_literals) {
  size_t h = static_cast<size_t>(e.kind) * 0x100000001b3ull;
  switch (e.kind) {
    case ParseExpr::Kind::kLiteral:
      if (normalize_literals) {
        h = Mix(h, e.literal.is_null()     ? 0
                   : e.literal.is_int64()  ? 1
                   : e.literal.is_double() ? 2
                                           : 3);
      } else {
        h = Mix(h, e.literal.Hash());
      }
      break;
    case ParseExpr::Kind::kColumnRef:
      h = Mix(h, std::hash<std::string>{}(e.table));
      h = Mix(h, std::hash<std::string>{}(e.column));
      break;
    case ParseExpr::Kind::kBinary:
      h = Mix(h, static_cast<size_t>(e.bop));
      h = Mix(h, SignatureOf(*e.left, normalize_literals));
      h = Mix(h, SignatureOf(*e.right, normalize_literals));
      break;
    case ParseExpr::Kind::kUnary:
      h = Mix(h, static_cast<size_t>(e.uop));
      h = Mix(h, SignatureOf(*e.left, normalize_literals));
      break;
    case ParseExpr::Kind::kAggCall:
      h = Mix(h, static_cast<size_t>(e.agg) + (e.count_star ? 97 : 0));
      if (e.agg_arg) h = Mix(h, SignatureOf(*e.agg_arg, normalize_literals));
      break;
  }
  return h;
}

size_t SignatureOf(const SelectStmt& stmt, bool normalize_literals) {
  size_t h = 0xc2b2ae3d27d4eb4full;
  h = Mix(h, stmt.distinct ? 2 : 1);
  for (const auto& item : stmt.items) {
    if (item.is_star) {
      h = Mix(h, 0x2a);
      continue;
    }
    h = Mix(h, SignatureOf(*item.expr, normalize_literals));
  }
  for (const auto& t : stmt.from) {
    h = Mix(h, std::hash<std::string>{}(t.table));
    h = Mix(h, std::hash<std::string>{}(t.effective_alias()));
  }
  if (stmt.where) h = Mix(h, SignatureOf(*stmt.where, normalize_literals));
  for (const auto& g : stmt.group_by) {
    h = Mix(h, SignatureOf(*g, normalize_literals));
  }
  if (stmt.having) h = Mix(h, SignatureOf(*stmt.having, normalize_literals));
  for (const auto& o : stmt.order_by) {
    h = Mix(h, SignatureOf(*o.expr, normalize_literals));
    h = Mix(h, o.descending ? 2 : 1);
  }
  if (stmt.limit.has_value()) {
    h = Mix(h, static_cast<size_t>(*stmt.limit) + 1);
  }
  return h;
}

}  // namespace fedcal
