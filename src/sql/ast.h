#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/bound_expr.h"  // reuses BinaryOp / UnaryOp
#include "storage/value.h"

namespace fedcal {

/// \brief Aggregate functions supported in SELECT lists and HAVING.
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

struct ParseExpr;
using ParseExprPtr = std::shared_ptr<ParseExpr>;

/// \brief Unbound (parse-time) expression node.
struct ParseExpr {
  enum class Kind { kLiteral, kColumnRef, kBinary, kUnary, kAggCall };

  Kind kind = Kind::kLiteral;

  // kLiteral
  Value literal;
  /// Parameter ordinal from the fingerprint pass (see
  /// sql/fingerprint.h), or -1 when this literal is not parameterized.
  /// Carried through binding into BoundExpr so a cached plan can be
  /// re-instantiated with a new statement's literal values.
  int param_index = -1;

  // kColumnRef: optional qualifier ("t.col" or "col")
  std::string table;
  std::string column;

  // kBinary / kUnary
  BinaryOp bop = BinaryOp::kEq;
  UnaryOp uop = UnaryOp::kNot;
  ParseExprPtr left;
  ParseExprPtr right;

  // kAggCall
  AggFunc agg = AggFunc::kCount;
  bool count_star = false;  ///< COUNT(*)
  ParseExprPtr agg_arg;

  static ParseExprPtr MakeLiteral(Value v);
  static ParseExprPtr MakeColumn(std::string table, std::string column);
  static ParseExprPtr MakeBinary(BinaryOp op, ParseExprPtr l, ParseExprPtr r);
  static ParseExprPtr MakeUnary(UnaryOp op, ParseExprPtr operand);
  static ParseExprPtr MakeAgg(AggFunc f, ParseExprPtr arg, bool star);

  /// True if any node in the tree is an aggregate call.
  bool ContainsAggregate() const;

  /// SQL rendering (parenthesized; used for fragment statements).
  std::string ToString() const;
};

/// \brief One base-table reference in the FROM clause.
struct TableRef {
  std::string table;  ///< nickname or physical table name
  std::string alias;  ///< defaults to `table` when empty

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

/// \brief One item in the SELECT list.
struct SelectItem {
  bool is_star = false;  ///< SELECT *
  ParseExprPtr expr;
  std::string alias;  ///< output column name override
};

struct OrderItem {
  ParseExprPtr expr;
  bool descending = false;
};

/// \brief Parsed SELECT statement. JOIN ... ON is normalized at parse time:
/// joined tables land in `from` and their ON conditions are ANDed into
/// `where`.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ParseExprPtr where;  ///< nullptr when absent
  std::vector<ParseExprPtr> group_by;
  ParseExprPtr having;  ///< nullptr when absent
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  /// Round-trippable SQL text.
  std::string ToString() const;
};

/// \brief Structural signature of an expression; with `normalize_literals`
/// set, literal values hash as their type only, so parameterized instances
/// of the same statement shape collide.
size_t SignatureOf(const ParseExpr& e, bool normalize_literals);

/// \brief Structural signature of a statement (the QCC "query type" key
/// used for workload accounting and round-robin plan groups).
size_t SignatureOf(const SelectStmt& stmt, bool normalize_literals = true);

}  // namespace fedcal
