#include "sql/binder.h"

#include <unordered_map>

#include "common/macros.h"
#include "common/string_util.h"

namespace fedcal {

namespace {

/// Infers the result type of a bound expression tree.
DataType InferType(const BoundExprPtr& e) {
  switch (e->kind()) {
    case BoundExpr::Kind::kLiteral: {
      const Value& v = e->literal();
      if (v.is_double()) return DataType::kDouble;
      if (v.is_string()) return DataType::kString;
      return DataType::kInt64;
    }
    case BoundExpr::Kind::kColumn:
      return e->column_type();
    case BoundExpr::Kind::kBinary: {
      const BinaryOp op = e->binary_op();
      if (IsComparison(op) || op == BinaryOp::kAnd ||
          op == BinaryOp::kOr || op == BinaryOp::kLike) {
        return DataType::kInt64;
      }
      if (op == BinaryOp::kDiv) return DataType::kDouble;
      const DataType l = InferType(e->left());
      const DataType r = InferType(e->right());
      if (l == DataType::kInt64 && r == DataType::kInt64) {
        return DataType::kInt64;
      }
      return DataType::kDouble;
    }
    case BoundExpr::Kind::kUnary:
      if (e->unary_op() == UnaryOp::kNeg) return InferType(e->operand());
      return DataType::kInt64;
  }
  return DataType::kInt64;
}

/// Column-resolution scope over the flattened FROM-row.
class Scope {
 public:
  explicit Scope(const std::vector<TableBinding>& tables) {
    for (const auto& t : tables) {
      for (size_t c = 0; c < t.schema.num_columns(); ++c) {
        const auto& col = t.schema.column(c);
        Slot slot{t.slot_offset + c, col.type,
                  t.alias + "." + col.name};
        by_qualified_[t.alias + "." + col.name] = slot;
        by_name_[col.name].push_back(slot);
      }
    }
  }

  struct Slot {
    size_t index;
    DataType type;
    std::string qualified_name;
  };

  Result<Slot> Resolve(const std::string& table,
                       const std::string& column) const {
    if (!table.empty()) {
      auto it = by_qualified_.find(table + "." + column);
      if (it == by_qualified_.end()) {
        return Status::BindError("unknown column " + table + "." + column);
      }
      return it->second;
    }
    auto it = by_name_.find(column);
    if (it == by_name_.end()) {
      return Status::BindError("unknown column " + column);
    }
    if (it->second.size() > 1) {
      return Status::BindError("ambiguous column " + column);
    }
    return it->second.front();
  }

 private:
  std::unordered_map<std::string, Slot> by_qualified_;
  std::unordered_map<std::string, std::vector<Slot>> by_name_;
};

/// Binds scalar (non-aggregate) expressions against a scope.
Result<BoundExprPtr> BindScalar(const ParseExprPtr& e, const Scope& scope) {
  switch (e->kind) {
    case ParseExpr::Kind::kLiteral:
      return BoundExpr::Literal(e->literal, e->param_index);
    case ParseExpr::Kind::kColumnRef: {
      FEDCAL_ASSIGN_OR_RETURN(Scope::Slot slot,
                              scope.Resolve(e->table, e->column));
      return BoundExpr::Column(slot.index, slot.qualified_name, slot.type);
    }
    case ParseExpr::Kind::kBinary: {
      FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr l, BindScalar(e->left, scope));
      FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr r, BindScalar(e->right, scope));
      if (IsComparison(e->bop)) {
        const DataType lt = InferType(l);
        const DataType rt = InferType(r);
        const bool ls = lt == DataType::kString;
        const bool rs = rt == DataType::kString;
        if (ls != rs) {
          return Status::BindError("cannot compare string with numeric in " +
                                   e->ToString());
        }
      }
      if (e->bop == BinaryOp::kLike) {
        if (InferType(l) != DataType::kString ||
            InferType(r) != DataType::kString) {
          return Status::BindError("LIKE requires string operands in " +
                                   e->ToString());
        }
      }
      return BoundExpr::Binary(e->bop, std::move(l), std::move(r));
    }
    case ParseExpr::Kind::kUnary: {
      FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr o, BindScalar(e->left, scope));
      return BoundExpr::Unary(e->uop, std::move(o));
    }
    case ParseExpr::Kind::kAggCall:
      return Status::BindError("aggregate not allowed here: " + e->ToString());
  }
  return Status::Internal("unhandled parse expr kind");
}

/// Context for binding expressions over the post-aggregation row
/// [group values..., agg results...].
class AggBinder {
 public:
  AggBinder(const Scope& scope, const std::vector<ParseExprPtr>& group_by,
            std::vector<BoundAggSpec>* aggs)
      : scope_(scope), aggs_(aggs) {
    for (size_t i = 0; i < group_by.size(); ++i) {
      group_keys_.emplace_back(group_by[i]->ToString(), i);
    }
  }

  /// Binds an expression over the post-agg row, registering aggregate
  /// calls in `aggs_` (deduplicated) as needed.
  Result<BoundExprPtr> Bind(const ParseExprPtr& e) {
    // A subtree structurally equal to a GROUP BY expression becomes a
    // reference to that group column.
    const std::string key = e->ToString();
    for (const auto& [gkey, gidx] : group_keys_) {
      if (gkey == key) {
        FEDCAL_ASSIGN_OR_RETURN(DataType t, GroupType(gidx));
        return BoundExpr::Column(gidx, key, t);
      }
    }
    switch (e->kind) {
      case ParseExpr::Kind::kLiteral:
        return BoundExpr::Literal(e->literal, e->param_index);
      case ParseExpr::Kind::kColumnRef:
        return Status::BindError(
            "column " + key +
            " must appear in GROUP BY or inside an aggregate");
      case ParseExpr::Kind::kBinary: {
        FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr l, Bind(e->left));
        FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr r, Bind(e->right));
        return BoundExpr::Binary(e->bop, std::move(l), std::move(r));
      }
      case ParseExpr::Kind::kUnary: {
        FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr o, Bind(e->left));
        return BoundExpr::Unary(e->uop, std::move(o));
      }
      case ParseExpr::Kind::kAggCall: {
        FEDCAL_ASSIGN_OR_RETURN(size_t agg_index, RegisterAgg(e));
        const auto& spec = (*aggs_)[agg_index];
        return BoundExpr::Column(group_keys_.size() + agg_index,
                                 spec.display_name, spec.result_type);
      }
    }
    return Status::Internal("unhandled parse expr kind");
  }

  /// Binds and remembers group-by expressions (must be called first, in
  /// order, with the statement's GROUP BY list).
  Status BindGroupBy(const std::vector<ParseExprPtr>& group_by,
                     std::vector<BoundExprPtr>* out) {
    for (const auto& g : group_by) {
      if (g->ContainsAggregate()) {
        return Status::BindError("aggregate in GROUP BY: " + g->ToString());
      }
      FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr b, BindScalar(g, scope_));
      group_types_.push_back(InferType(b));
      out->push_back(std::move(b));
    }
    return Status::OK();
  }

 private:
  Result<DataType> GroupType(size_t i) const {
    if (i >= group_types_.size()) {
      return Status::Internal("group-by types not yet bound");
    }
    return group_types_[i];
  }

  Result<size_t> RegisterAgg(const ParseExprPtr& e) {
    BoundAggSpec spec;
    spec.func = e->agg;
    spec.count_star = e->count_star;
    spec.display_name = e->ToString();
    spec.dedup_key = spec.display_name;
    for (size_t i = 0; i < aggs_->size(); ++i) {
      if ((*aggs_)[i].dedup_key == spec.dedup_key) return i;
    }
    if (!spec.count_star) {
      if (e->agg_arg->ContainsAggregate()) {
        return Status::BindError("nested aggregate: " + e->ToString());
      }
      FEDCAL_ASSIGN_OR_RETURN(spec.arg, BindScalar(e->agg_arg, scope_));
    }
    const DataType arg_type =
        spec.count_star ? DataType::kInt64 : InferType(spec.arg);
    switch (spec.func) {
      case AggFunc::kCount:
        spec.result_type = DataType::kInt64;
        break;
      case AggFunc::kAvg:
        spec.result_type = DataType::kDouble;
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        spec.result_type = arg_type;
        break;
    }
    if (spec.func == AggFunc::kSum || spec.func == AggFunc::kAvg) {
      if (arg_type == DataType::kString) {
        return Status::BindError("SUM/AVG over string column in " +
                                 spec.display_name);
      }
    }
    aggs_->push_back(std::move(spec));
    return aggs_->size() - 1;
  }

  const Scope& scope_;
  std::vector<BoundAggSpec>* aggs_;
  std::vector<std::pair<std::string, size_t>> group_keys_;
  std::vector<DataType> group_types_;
};

std::string OutputName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ParseExpr::Kind::kColumnRef) {
    return item.expr->column;
  }
  if (item.expr->kind == ParseExpr::Kind::kAggCall) {
    return item.expr->ToString();
  }
  return StringFormat("expr%zu", index);
}

}  // namespace

Schema BoundQuery::PostAggSchema() const {
  Schema s;
  for (size_t i = 0; i < group_by.size(); ++i) {
    s.AddColumn({StringFormat("group%zu", i), InferType(group_by[i])});
  }
  for (const auto& a : aggs) {
    s.AddColumn({a.display_name, a.result_type});
  }
  return s;
}

Result<BoundQuery> BindQuery(const SelectStmt& stmt,
                             const std::vector<Schema>& table_schemas) {
  if (stmt.from.empty()) {
    return Status::BindError("query has no FROM clause");
  }
  if (table_schemas.size() != stmt.from.size()) {
    return Status::BindError(StringFormat(
        "expected %zu table schemas, got %zu", stmt.from.size(),
        table_schemas.size()));
  }

  BoundQuery bq;
  bq.distinct = stmt.distinct;
  bq.limit = stmt.limit;

  // Lay out FROM tables left-to-right in the flattened row.
  size_t offset = 0;
  std::unordered_map<std::string, int> alias_count;
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    TableBinding tb;
    tb.alias = stmt.from[i].effective_alias();
    tb.table_name = stmt.from[i].table;
    tb.schema = table_schemas[i];
    tb.slot_offset = offset;
    if (++alias_count[tb.alias] > 1) {
      return Status::BindError("duplicate table alias " + tb.alias);
    }
    offset += tb.schema.num_columns();
    bq.tables.push_back(std::move(tb));
  }
  for (const auto& t : bq.tables) {
    for (const auto& c : t.schema.columns()) {
      bq.input_schema.AddColumn({t.alias + "." + c.name, c.type});
    }
  }

  Scope scope(bq.tables);

  if (stmt.where) {
    if (stmt.where->ContainsAggregate()) {
      return Status::BindError("aggregate in WHERE clause");
    }
    FEDCAL_ASSIGN_OR_RETURN(bq.where, BindScalar(stmt.where, scope));
  }

  bool any_agg = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const auto& item : stmt.items) {
    if (!item.is_star && item.expr->ContainsAggregate()) any_agg = true;
  }
  bq.has_aggregate = any_agg;

  if (!bq.has_aggregate) {
    // Plain query: outputs over the input row.
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (item.is_star) {
        for (size_t c = 0; c < bq.input_schema.num_columns(); ++c) {
          const auto& col = bq.input_schema.column(c);
          bq.outputs.push_back(BoundExpr::Column(c, col.name, col.type));
          bq.output_schema.AddColumn(col);
        }
        continue;
      }
      FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr b, BindScalar(item.expr, scope));
      bq.output_schema.AddColumn({OutputName(item, i), InferType(b)});
      bq.outputs.push_back(std::move(b));
    }
  } else {
    AggBinder agg_binder(scope, stmt.group_by, &bq.aggs);
    FEDCAL_RETURN_NOT_OK(agg_binder.BindGroupBy(stmt.group_by, &bq.group_by));
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const auto& item = stmt.items[i];
      if (item.is_star) {
        return Status::BindError("SELECT * not allowed with aggregation");
      }
      FEDCAL_ASSIGN_OR_RETURN(BoundExprPtr b, agg_binder.Bind(item.expr));
      bq.output_schema.AddColumn({OutputName(item, i), InferType(b)});
      bq.outputs.push_back(std::move(b));
    }
    if (stmt.having) {
      FEDCAL_ASSIGN_OR_RETURN(bq.having, agg_binder.Bind(stmt.having));
    }
  }

  // ORDER BY binds against the output schema (by alias / output name), so
  // it can run after the final projection.
  for (const auto& o : stmt.order_by) {
    if (o.expr->kind == ParseExpr::Kind::kColumnRef && o.expr->table.empty()) {
      auto idx = bq.output_schema.IndexOf(o.expr->column);
      if (idx.has_value()) {
        const auto& col = bq.output_schema.column(*idx);
        bq.order_by.emplace_back(
            BoundExpr::Column(*idx, col.name, col.type), o.descending);
        continue;
      }
    }
    // Fallback: structural match against a SELECT item.
    const std::string key = o.expr->ToString();
    bool matched = false;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (!stmt.items[i].is_star && stmt.items[i].expr->ToString() == key) {
        const auto& col = bq.output_schema.column(i);
        bq.order_by.emplace_back(BoundExpr::Column(i, col.name, col.type),
                                 o.descending);
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::BindError(
          "ORDER BY expression must name an output column: " + key);
    }
  }

  return bq;
}

}  // namespace fedcal
