#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace fedcal {

/// \brief Token categories produced by the SQL lexer.
enum class TokenType {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (stored upper-cased)
  kIdentifier,  ///< table / column / alias names
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  ///< single-quoted, '' escapes a quote
  kOperator,       ///< = <> != < <= > >= + - * / ( ) , .
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;     ///< keyword/operator text, identifier, raw literal
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  ///< byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// \brief Tokenizes a SQL string. Keywords are recognized
/// case-insensitively and normalized to upper case; identifiers keep their
/// original spelling.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace fedcal
