#include "catalog/global_catalog.h"

namespace fedcal {

Status GlobalCatalog::RegisterNickname(const std::string& nickname,
                                       Schema schema) {
  if (nicknames_.count(nickname)) {
    return Status::AlreadyExists("nickname " + nickname);
  }
  NicknameEntry entry;
  entry.nickname = nickname;
  entry.schema = std::move(schema);
  nicknames_[nickname] = std::move(entry);
  ++version_;
  return Status::OK();
}

Status GlobalCatalog::AddLocation(const std::string& nickname,
                                  const std::string& server_id,
                                  const std::string& remote_table) {
  auto it = nicknames_.find(nickname);
  if (it == nicknames_.end()) {
    return Status::NotFound("nickname " + nickname + " not registered");
  }
  for (const auto& loc : it->second.locations) {
    if (loc.server_id == server_id && loc.remote_table == remote_table) {
      return Status::AlreadyExists("location " + server_id + "/" +
                                   remote_table + " for " + nickname);
    }
  }
  it->second.locations.push_back({server_id, remote_table});
  ++version_;
  return Status::OK();
}

Result<const NicknameEntry*> GlobalCatalog::Lookup(
    const std::string& nickname) const {
  auto it = nicknames_.find(nickname);
  if (it == nicknames_.end()) {
    return Status::NotFound("unknown nickname " + nickname);
  }
  return &it->second;
}

bool GlobalCatalog::HasNickname(const std::string& nickname) const {
  return nicknames_.count(nickname) > 0;
}

std::vector<std::string> GlobalCatalog::nicknames() const {
  std::vector<std::string> names;
  names.reserve(nicknames_.size());
  for (const auto& [name, e] : nicknames_) names.push_back(name);
  return names;
}

void GlobalCatalog::PutStats(const std::string& nickname, TableStats stats) {
  stats.table_name = nickname;
  stats_[nickname] = std::move(stats);
  ++version_;
}

const TableStats* GlobalCatalog::GetStats(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

void GlobalCatalog::SetServerProfile(ServerProfile profile) {
  profiles_[profile.server_id] = std::move(profile);
  ++version_;
}

Result<const ServerProfile*> GlobalCatalog::GetServerProfile(
    const std::string& server_id) const {
  auto it = profiles_.find(server_id);
  if (it == profiles_.end()) {
    return Status::NotFound("no profile for server " + server_id);
  }
  return &it->second;
}

std::vector<std::string> GlobalCatalog::server_ids() const {
  std::vector<std::string> ids;
  ids.reserve(profiles_.size());
  for (const auto& [id, p] : profiles_) ids.push_back(id);
  return ids;
}

}  // namespace fedcal
