#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/stats_provider.h"
#include "storage/schema.h"

namespace fedcal {

/// \brief One place a nickname's data lives: a server and the table's name
/// there. Multiple locations for one nickname are replicas (the paper's
/// equivalent data sources).
struct NicknameLocation {
  std::string server_id;
  std::string remote_table;
};

/// \brief A registered nickname: the global name federated queries use.
struct NicknameEntry {
  std::string nickname;
  Schema schema;
  std::vector<NicknameLocation> locations;
};

/// \brief Admin-configured beliefs about a remote server, entered at
/// nickname-registration time.
///
/// These are the *static* values DB2 II lets administrators specify
/// (CPU power, expected network latency, §1.1). The simulated runtime may
/// diverge arbitrarily from them — QCC's calibration factors absorb the
/// difference; nothing in the optimizer ever reads the true dynamic state.
struct ServerProfile {
  std::string server_id;
  double configured_speed = 200'000.0;  ///< work units / second
  double configured_latency_s = 0.005;  ///< one-way
  double configured_bandwidth_bytes_per_s = 12.5e6;
};

/// \brief The integrator's global catalog: nickname definitions, replica
/// locations, cached remote statistics, and configured server profiles.
///
/// Implements StatsProvider keyed by nickname, so the II-side planner can
/// cost merge plans over nickname references.
class GlobalCatalog : public StatsProvider {
 public:
  // -- Nicknames -------------------------------------------------------------

  Status RegisterNickname(const std::string& nickname, Schema schema);
  Status AddLocation(const std::string& nickname, const std::string& server_id,
                     const std::string& remote_table);
  Result<const NicknameEntry*> Lookup(const std::string& nickname) const;
  bool HasNickname(const std::string& nickname) const;
  std::vector<std::string> nicknames() const;

  // -- Cached remote statistics ------------------------------------------------

  /// Caches statistics for a nickname (collected from one location at
  /// registration time — the federated RUNSTATS analog).
  void PutStats(const std::string& nickname, TableStats stats);
  const TableStats* GetStats(const std::string& name) const override;

  // -- Server profiles ----------------------------------------------------------

  void SetServerProfile(ServerProfile profile);
  Result<const ServerProfile*> GetServerProfile(
      const std::string& server_id) const;
  std::vector<std::string> server_ids() const;

  /// Deep copy (used by the what-if simulated federated system, §2/§4.2).
  GlobalCatalog Clone() const { return *this; }

  /// Monotonic edit counter, bumped by every mutator. The integrator
  /// compares it against the value it last compiled under to invalidate
  /// the prepared-plan cache on catalog/replica changes.
  uint64_t version() const { return version_; }

 private:
  std::map<std::string, NicknameEntry> nicknames_;
  std::map<std::string, TableStats> stats_;
  std::map<std::string, ServerProfile> profiles_;
  uint64_t version_ = 0;
};

}  // namespace fedcal
