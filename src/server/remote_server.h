#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "cost/stats_provider.h"
#include "engine/executor.h"
#include "obs/operator_profile.h"
#include "obs/telemetry.h"
#include "core/clock.h"
#include "storage/table.h"

namespace fedcal {

/// \brief Hardware/behaviour profile of a simulated remote DBMS.
///
/// `cpu_speed` and `io_speed` are work units per simulated second at zero
/// load. Background load (the paper's "heavy update load", §5 step 4)
/// reduces the effective speeds through the per-server sensitivities, so a
/// machine with high `io_load_sensitivity` degrades scan-heavy query types
/// much more than CPU-bound ones — the behaviour Figure 9 documents for S3
/// on query type 2.
struct ServerConfig {
  std::string id;
  double cpu_speed = 200'000.0;
  double io_speed = 200'000.0;
  int num_workers = 4;  ///< concurrent fragment execution slots
  double cpu_load_sensitivity = 0.8;
  double io_load_sensitivity = 0.8;
  /// Floor on effective speed under extreme load, as a fraction of nominal.
  double min_speed_fraction = 0.05;
  /// Engine configuration for fragment execution (row vs columnar, batch
  /// size, work-unit price list). Results and stats are engine-invariant.
  ExecConfig exec = {};
};

/// \brief Result of executing one fragment at a remote server.
struct FragmentResult {
  TablePtr table;
  ExecStats exec_stats;
  double server_seconds = 0.0;  ///< queueing + service time at the server
  SimTime started_at = 0.0;
  SimTime finished_at = 0.0;
  /// Per-operator profile of the fragment's execution, with virtual
  /// seconds already scaled by the server's effective speeds at run time.
  /// Optional reply extension: null when the server ran with profiling off
  /// — readers must (and do) treat its absence as the old reply format.
  std::shared_ptr<obs::OperatorProfile> profile;
};

/// \brief A simulated remote database server.
///
/// Hosts real tables, executes fragment plans with the real engine, and
/// models time: a fragment occupies one of `num_workers` slots for
/// work/effective-speed seconds (FCFS queue when all slots are busy).
/// Completion is delivered asynchronously through the discrete-event
/// simulator. Supports availability flips (server down) and transient
/// error injection for the reliability experiments.
class RemoteServer {
 public:
  RemoteServer(ServerConfig config, ExecutionContext* sim, Rng rng);

  const std::string& id() const { return config_.id; }
  const ServerConfig& config() const { return config_; }

  // -- Data ----------------------------------------------------------------

  /// Registers a table (name must be unique on this server) and computes
  /// its statistics.
  Status AddTable(TablePtr table);
  Result<TablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> table_names() const;

  /// Appends rows to a hosted table *without* recomputing statistics —
  /// like a production DBMS, the catalog stays stale until the next
  /// RUNSTATS (RefreshStats). Rows are validated against the schema.
  Status AppendRows(const std::string& table, const std::vector<Row>& rows);

  /// RUNSTATS analog: recompute statistics for one table / all tables.
  Status RefreshStats(const std::string& table);
  void RefreshAllStats();

  /// Local statistics catalog (what the wrapper's cost model uses).
  const StatsCatalog& stats() const { return stats_; }

  // -- Load & availability ---------------------------------------------------

  /// Background utilization in [0, 1): fraction of the machine consumed by
  /// non-federated work.
  void set_background_load(double load);
  double background_load() const { return background_load_; }

  void SetAvailable(bool available) { available_ = available; }
  bool available() const { return available_; }

  /// Emits per-server execution metrics to `telemetry` (nullable; nullptr
  /// disables emission — the introspection counters below always work).
  void SetTelemetry(obs::Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Probability that a fragment fails with a transient execution error.
  void set_error_rate(double rate) { error_rate_ = rate; }
  double error_rate() const { return error_rate_; }

  /// Effective speeds under the current background load.
  double effective_cpu_speed() const;
  double effective_io_speed() const;

  // -- Execution -------------------------------------------------------------

  using CompletionCallback = std::function<void(Result<FragmentResult>)>;

  /// Asynchronously executes `plan` against this server's tables. The
  /// callback fires through the simulator once the fragment completes,
  /// fails, or is rejected (server down). The result's `server_seconds`
  /// covers queueing plus service time (transport is the Network's job).
  /// Returns a job id usable with CancelFragment (0 when the fragment was
  /// rejected outright and there is nothing to cancel).
  uint64_t SubmitFragment(PlanNodePtr plan, CompletionCallback done);

  /// Cancels a queued or in-flight fragment: the job is dequeued (or its
  /// worker freed and its busy time refunded) and its callback never
  /// fires. Returns false when the job already completed or is unknown.
  bool CancelFragment(uint64_t job_id);

  /// Hard outage: fails every queued *and* running fragment with
  /// Unavailable. SetAvailable(false) only rejects new submissions and
  /// lets running jobs finish — the right model for a graceful drain, but
  /// not for a crash mid-flight. Callbacks fire through the simulator on
  /// the next tick; refunded worker time is not charged. Returns the
  /// number of jobs aborted.
  size_t AbortInFlight(const std::string& why);

  /// Synchronous execution that charges no simulated time — used by the
  /// availability daemons' probes and by tests.
  Result<FragmentResult> ExecuteNow(const PlanNodePtr& plan);

  // -- Introspection -----------------------------------------------------------

  int busy_workers() const { return busy_workers_; }
  size_t queued_fragments() const { return queue_.size(); }
  size_t fragments_completed() const { return completed_; }
  size_t fragments_failed() const { return failed_; }
  size_t fragments_cancelled() const { return cancelled_; }
  double total_busy_seconds() const { return total_busy_seconds_; }

 private:
  struct Job {
    uint64_t id = 0;
    PlanNodePtr plan;
    CompletionCallback done;
    SimTime submitted_at;
  };
  struct RunningJob {
    ExecutionContext::EventId completion_event = 0;
    SimTime scheduled_end = 0.0;
    /// Held here (not in the completion closure) so CancelFragment drops
    /// it silently and AbortInFlight can deliver the outage through it.
    CompletionCallback done;
  };

  void TryDispatch();
  void RunJob(Job job);
  /// Bumps counter `server.<what>.<id>` when telemetry is attached.
  void Count(const std::string& what);

  ServerConfig config_;
  ExecutionContext* sim_;
  obs::Telemetry* telemetry_ = nullptr;
  Rng rng_;
  std::map<std::string, TablePtr> tables_;
  StatsCatalog stats_;
  Executor executor_;

  double background_load_ = 0.0;
  bool available_ = true;
  double error_rate_ = 0.0;

  int busy_workers_ = 0;
  std::deque<Job> queue_;
  uint64_t next_job_id_ = 1;
  std::map<uint64_t, RunningJob> running_;
  size_t completed_ = 0;
  size_t failed_ = 0;
  size_t cancelled_ = 0;
  double total_busy_seconds_ = 0.0;
};

}  // namespace fedcal
