#include "server/remote_server.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"

namespace fedcal {

RemoteServer::RemoteServer(ServerConfig config, ExecutionContext* sim, Rng rng)
    : config_(std::move(config)),
      sim_(sim),
      rng_(rng),
      executor_([this](const std::string& name) { return GetTable(name); },
                config_.exec) {}

Status RemoteServer::AddTable(TablePtr table) {
  if (tables_.count(table->name())) {
    return Status::AlreadyExists("table " + table->name() + " on server " +
                                 config_.id);
  }
  stats_.Put(TableStats::Compute(*table));
  tables_[table->name()] = std::move(table);
  return Status::OK();
}

Result<TablePtr> RemoteServer::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table " + name + " on server " + config_.id);
  }
  return it->second;
}

bool RemoteServer::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

std::vector<std::string> RemoteServer::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

Status RemoteServer::AppendRows(const std::string& table,
                                const std::vector<Row>& rows) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table " + table + " on server " +
                            config_.id);
  }
  for (const Row& row : rows) {
    FEDCAL_RETURN_NOT_OK(it->second->AppendRow(row));
  }
  return Status::OK();
}

Status RemoteServer::RefreshStats(const std::string& table) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table " + table + " on server " +
                            config_.id);
  }
  stats_.Put(TableStats::Compute(*it->second));
  return Status::OK();
}

void RemoteServer::RefreshAllStats() {
  for (const auto& [name, table] : tables_) {
    stats_.Put(TableStats::Compute(*table));
  }
}

void RemoteServer::set_background_load(double load) {
  background_load_ = std::clamp(load, 0.0, 0.99);
}

double RemoteServer::effective_cpu_speed() const {
  const double frac = std::max(
      config_.min_speed_fraction,
      1.0 - config_.cpu_load_sensitivity * background_load_);
  return config_.cpu_speed * frac;
}

double RemoteServer::effective_io_speed() const {
  const double frac = std::max(
      config_.min_speed_fraction,
      1.0 - config_.io_load_sensitivity * background_load_);
  return config_.io_speed * frac;
}

Result<FragmentResult> RemoteServer::ExecuteNow(const PlanNodePtr& plan) {
  if (!available_) {
    return Status::Unavailable("server " + config_.id + " is down");
  }
  FragmentResult result;
  result.started_at = sim_->Now();
  FEDCAL_ASSIGN_OR_RETURN(
      result.table,
      executor_.Execute(plan, &result.exec_stats,
                        config_.exec.profile ? &result.profile : nullptr));
  result.server_seconds =
      result.exec_stats.cpu_units() / effective_cpu_speed() +
      result.exec_stats.io_units / effective_io_speed();
  if (result.profile) {
    obs::ApplyServerSpeeds(result.profile.get(), effective_cpu_speed(),
                           effective_io_speed());
  }
  result.finished_at = result.started_at;
  return result;
}

void RemoteServer::Count(const std::string& what) {
  if (telemetry_ != nullptr) {
    telemetry_->metrics.counter("server." + what + "." + config_.id).Add();
  }
}

uint64_t RemoteServer::SubmitFragment(PlanNodePtr plan,
                                      CompletionCallback done) {
  if (!available_) {
    Count("rejected");
    // Rejection still takes one scheduler tick so callers never reenter.
    sim_->ScheduleAfter(0.0, [this, done = std::move(done)] {
      done(Status::Unavailable("server " + config_.id + " is down"));
    });
    return 0;
  }
  const uint64_t id = next_job_id_++;
  queue_.push_back(Job{id, std::move(plan), std::move(done), sim_->Now()});
  Count("submitted");
  TryDispatch();
  if (telemetry_ != nullptr) {
    telemetry_->metrics.gauge("server.queue_depth." + config_.id)
        .Set(double(queue_.size()));
  }
  return id;
}

bool RemoteServer::CancelFragment(uint64_t job_id) {
  if (job_id == 0) return false;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == job_id) {
      queue_.erase(it);
      ++cancelled_;
      Count("cancelled");
      return true;
    }
  }
  auto it = running_.find(job_id);
  if (it == running_.end()) return false;
  sim_->Cancel(it->second.completion_event);
  // Refund the service time the worker will no longer spend.
  total_busy_seconds_ -=
      std::max(0.0, it->second.scheduled_end - sim_->Now());
  running_.erase(it);
  --busy_workers_;
  ++cancelled_;
  Count("cancelled");
  TryDispatch();
  return true;
}

void RemoteServer::TryDispatch() {
  while (busy_workers_ < config_.num_workers && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_workers_;
    RunJob(std::move(job));
  }
}

void RemoteServer::RunJob(Job job) {
  // The server may have gone down while the job sat in the queue.
  if (!available_) {
    --busy_workers_;
    Count("rejected");
    sim_->ScheduleAfter(0.0, [this, done = std::move(job.done)] {
      done(Status::Unavailable("server " + config_.id + " went down"));
    });
    return;
  }

  FragmentResult result;
  result.started_at = sim_->Now();
  ExecStats stats;
  std::shared_ptr<obs::OperatorProfile> profile;
  auto table = executor_.Execute(
      job.plan, &stats, config_.exec.profile ? &profile : nullptr);
  if (profile) {
    // Scale unit deltas with the speeds in force *now* — the load that
    // shaped this execution, even if it changes before the reply lands.
    obs::ApplyServerSpeeds(profile.get(), effective_cpu_speed(),
                           effective_io_speed());
  }

  double service_time = 0.0;
  Status failure = Status::OK();
  if (!table.ok()) {
    failure = table.status();
    service_time = 1e-4;  // fast failure
  } else {
    service_time = stats.cpu_units() / effective_cpu_speed() +
                   stats.io_units / effective_io_speed();
    if (error_rate_ > 0.0 && rng_.Bernoulli(error_rate_)) {
      // Transient fault mid-execution: charge a random fraction of the
      // work, return an error.
      service_time *= rng_.UniformDouble(0.1, 0.9);
      failure = Status::ExecutionError("transient fault on server " +
                                       config_.id);
    }
  }
  total_busy_seconds_ += service_time;

  const SimTime submitted = job.submitted_at;
  const uint64_t job_id = job.id;
  const ExecutionContext::EventId event = sim_->ScheduleAfter(
      service_time,
      [this, job_id, failure,
       table = table.ok() ? table.MoveValue() : nullptr, stats, submitted,
       profile = std::move(profile),
       started = result.started_at]() mutable {
        auto run_it = running_.find(job_id);
        CompletionCallback done = std::move(run_it->second.done);
        running_.erase(run_it);
        --busy_workers_;
        if (!failure.ok()) {
          ++failed_;
          Count("failed");
          done(failure);
        } else {
          ++completed_;
          Count("completed");
          FragmentResult r;
          r.table = std::move(table);
          r.exec_stats = stats;
          r.profile = std::move(profile);
          r.started_at = started;
          r.finished_at = sim_->Now();
          r.server_seconds = sim_->Now() - submitted;
          if (telemetry_ != nullptr) {
            telemetry_->metrics.histogram("server.exec_s." + config_.id)
                .Record(r.server_seconds);
          }
          done(std::move(r));
        }
        TryDispatch();
      });
  running_[job_id] =
      RunningJob{event, sim_->Now() + service_time, std::move(job.done)};
}

size_t RemoteServer::AbortInFlight(const std::string& why) {
  const Status failure =
      Status::Unavailable("server " + config_.id + " " + why);
  size_t aborted = 0;
  // Queued jobs never reached a worker; running jobs lose theirs and the
  // unspent service time is refunded (the machine is gone, nobody pays).
  std::deque<Job> queued;
  queued.swap(queue_);
  for (Job& job : queued) {
    ++failed_;
    Count("failed");
    sim_->ScheduleAfter(0.0, [done = std::move(job.done), failure] {
      done(failure);
    });
    ++aborted;
  }
  std::map<uint64_t, RunningJob> running;
  running.swap(running_);
  for (auto& [job_id, job] : running) {
    sim_->Cancel(job.completion_event);
    total_busy_seconds_ -= std::max(0.0, job.scheduled_end - sim_->Now());
    --busy_workers_;
    ++failed_;
    Count("failed");
    sim_->ScheduleAfter(0.0, [done = std::move(job.done), failure] {
      done(failure);
    });
    ++aborted;
  }
  if (telemetry_ != nullptr) {
    telemetry_->metrics.gauge("server.queue_depth." + config_.id).Set(0.0);
  }
  if (aborted > 0) {
    FEDCAL_LOG_INFO << "server " << config_.id << ": outage aborted "
                    << aborted << " in-flight fragment(s)";
  }
  return aborted;
}

}  // namespace fedcal
