#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "federation/integrator.h"
#include "core/clock.h"

namespace fedcal {

/// \brief Load-distribution tuning (§4).
struct LoadBalanceConfig {
  enum class Level {
    kNone,      ///< always take the cheapest plan (paper baseline)
    kFragment,  ///< §4.1: rotate exchangeable (identical-shape) fragment
                ///  plans across replicas
    kGlobal,    ///< §4.2: rotate near-optimal global plans across distinct
                ///  server sets
  };
  Level level = Level::kGlobal;
  /// Plans within this fraction of the cheapest are exchangeable ("e.g.
  /// within 20%").
  double cost_tolerance = 0.2;
  /// A query type participates in rotation only when its workload
  /// (calibrated cost × frequency) within the current period exceeds this.
  double workload_threshold = 0.0;
  /// Length of the workload-accounting period.
  double period_seconds = 60.0;
};

/// \brief Everything the balancer knew and decided for one selection —
/// the §4 half of a flight-recorder DecisionRecord.
struct PlanSelection {
  size_t chosen = 0;
  LoadBalanceConfig::Level level = LoadBalanceConfig::Level::kNone;
  /// Option indices deemed exchangeable (§4.1/§4.2 clustering outcome).
  std::vector<size_t> group;
  /// Round-robin position consumed by this selection.
  uint64_t rotation_counter = 0;
  /// False when the query type's period workload was below the threshold
  /// (rotation skipped, cheapest taken).
  bool workload_threshold_met = true;
  double workload_in_period = 0.0;
};

/// \brief Round-robin plan rotation for load distribution (§4).
///
/// Implements PlanSelector. Groups are recomputed on every selection from
/// the current calibrated costs (they shift as QCC learns), while the
/// rotation counters persist per query signature so consecutive instances
/// of the same query type land on different servers.
class LoadBalancer : public PlanSelector {
 public:
  LoadBalancer(ExecutionContext* sim, LoadBalanceConfig config = {})
      : sim_(sim), config_(config) {}

  /// Route-phase entry point: uses ctx.type_signature (falling back to
  /// parsing ctx.sql only when the compile phase left it unset).
  size_t SelectPlan(const QueryContext& ctx,
                    const std::vector<GlobalPlanOption>& options) override;

  /// Convenience overload for callers without a QueryContext (tests,
  /// benches): parses `sql` to derive the query-type signature.
  size_t SelectPlan(uint64_t query_id, const std::string& sql,
                    const std::vector<GlobalPlanOption>& options);

  /// SelectPlan plus a full account of the decision (rotation group,
  /// counter, threshold verdict) for the flight recorder.
  PlanSelection SelectPlanExplained(
      const QueryContext& ctx,
      const std::vector<GlobalPlanOption>& options);
  PlanSelection SelectPlanExplained(
      uint64_t query_id, const std::string& sql,
      const std::vector<GlobalPlanOption>& options);
  /// The core path: no parsing, keyed directly by the query-type
  /// signature.
  PlanSelection SelectPlanExplained(
      size_t signature, const std::vector<GlobalPlanOption>& options);

  const LoadBalanceConfig& config() const { return config_; }
  void set_level(LoadBalanceConfig::Level level) { config_.level = level; }

  /// Most recent rotation-group size for a query signature (diagnostics).
  size_t LastGroupSize(size_t signature) const;

 private:
  struct QueryTypeState {
    double period_start = 0.0;
    double workload_in_period = 0.0;
    uint64_t rotation = 0;
    size_t last_group_size = 0;
  };

  /// §4.2: indices of the round-robin group — per server-set cheapest
  /// plans within tolerance of the global cheapest.
  std::vector<size_t> GlobalGroup(
      const std::vector<GlobalPlanOption>& options) const;

  /// §4.1: indices of options exchangeable with the cheapest — equal
  /// everywhere except fragments replaced by identical-shape plans of
  /// near-equal calibrated cost.
  std::vector<size_t> FragmentGroup(
      const std::vector<GlobalPlanOption>& options) const;

  QueryTypeState& StateFor(size_t signature);

  ExecutionContext* sim_;
  LoadBalanceConfig config_;
  std::map<size_t, QueryTypeState> per_type_;
};

}  // namespace fedcal
