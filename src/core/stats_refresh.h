#pragma once

#include <memory>

#include "catalog/global_catalog.h"
#include "metawrapper/meta_wrapper.h"
#include "core/clock.h"

namespace fedcal {

/// \brief Periodic catalog maintenance: the "simulated catalog refreshes"
/// QCC schedules alongside its other calibration cycles (§3.4).
///
/// Each refresh re-runs the RUNSTATS analog on every remote server
/// (bringing the wrappers' local statistics in line with update-drifted
/// data) and recomputes the integrator's cached nickname statistics from
/// the first available replica. Between refreshes the estimate error from
/// stale statistics is absorbed — like every other estimate error — by
/// QCC's calibration factors.
class StatsRefreshDaemon {
 public:
  StatsRefreshDaemon(ExecutionContext* sim, GlobalCatalog* catalog,
                     MetaWrapper* meta_wrapper, double period_s = 30.0)
      : catalog_(catalog), meta_wrapper_(meta_wrapper) {
    task_ = std::make_unique<PeriodicTask>(
        sim, period_s, [this] { Refresh(); }, /*initial_delay=*/period_s);
  }

  void Start() { task_->Start(); }
  void Stop() { task_->Stop(); }
  bool running() const { return task_->running(); }
  size_t refreshes() const { return refreshes_; }

  /// One immediate refresh pass (also called by the periodic task).
  void Refresh() {
    ++refreshes_;
    for (const auto& server_id : meta_wrapper_->server_ids()) {
      auto wrapper = meta_wrapper_->GetWrapper(server_id);
      if (!wrapper.ok()) continue;
      RemoteServer* server = (*wrapper)->server();
      if (!server->available()) continue;
      server->RefreshAllStats();
    }
    // Refresh the integrator's cached nickname statistics from the first
    // live replica of each nickname.
    for (const auto& nickname : catalog_->nicknames()) {
      auto entry = catalog_->Lookup(nickname);
      if (!entry.ok()) continue;
      for (const auto& loc : (*entry)->locations) {
        auto wrapper = meta_wrapper_->GetWrapper(loc.server_id);
        if (!wrapper.ok()) continue;
        RemoteServer* server = (*wrapper)->server();
        if (!server->available()) continue;
        const TableStats* ts = server->stats().GetStats(loc.remote_table);
        if (ts == nullptr) continue;
        catalog_->PutStats(nickname, *ts);
        break;
      }
    }
  }

 private:
  GlobalCatalog* catalog_;
  MetaWrapper* meta_wrapper_;
  std::unique_ptr<PeriodicTask> task_;
  size_t refreshes_ = 0;
};

}  // namespace fedcal
