#include "core/circuit_breaker.h"

#include <algorithm>

#include "common/logging.h"

namespace fedcal {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

BreakerState CircuitBreaker::State(SimTime now) const {
  if (state_ == BreakerState::kOpen &&
      now >= opened_at_ + current_open_duration_) {
    state_ = BreakerState::kHalfOpen;
  }
  return state_;
}

void CircuitBreaker::Trip(SimTime now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  half_open_streak_ = 0;
  consecutive_failures_ = 0;
  if (times_opened_ > 0) {
    current_open_duration_ = std::min(
        config_.max_open_duration_s,
        current_open_duration_ * config_.open_backoff_multiplier);
  }
  ++times_opened_;
}

void CircuitBreaker::RecordFailure(SimTime now) {
  switch (State(now)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) Trip(now);
      break;
    case BreakerState::kHalfOpen:
      // Probation failed: re-open with a longer cool-down.
      Trip(now);
      break;
    case BreakerState::kOpen:
      // Stragglers from before the trip carry no new signal.
      break;
  }
}

void CircuitBreaker::RecordSuccess(SimTime now) {
  switch (State(now)) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_streak_ >= config_.half_open_successes) Reset();
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::Reset() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  half_open_streak_ = 0;
  times_opened_ = 0;
  current_open_duration_ = config_.open_duration_s;
}

CircuitBreaker& CircuitBreakerBank::Get(const std::string& server_id) {
  auto it = breakers_.find(server_id);
  if (it == breakers_.end()) {
    it = breakers_.emplace(server_id, CircuitBreaker(config_)).first;
  }
  return it->second;
}

const CircuitBreaker* CircuitBreakerBank::Find(
    const std::string& server_id) const {
  auto it = breakers_.find(server_id);
  return it == breakers_.end() ? nullptr : &it->second;
}

BreakerState CircuitBreakerBank::State(const std::string& server_id,
                                       SimTime now) const {
  const CircuitBreaker* b = Find(server_id);
  return b == nullptr ? BreakerState::kClosed : b->State(now);
}

std::vector<std::string> CircuitBreakerBank::server_ids() const {
  std::vector<std::string> ids;
  ids.reserve(breakers_.size());
  for (const auto& [id, b] : breakers_) ids.push_back(id);
  return ids;
}

}  // namespace fedcal
