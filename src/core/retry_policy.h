#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "common/rng.h"

namespace fedcal {

/// \brief Tuning for retry scheduling after failed or timed-out attempts.
struct RetryPolicyConfig {
  /// Total execution attempts per query (first attempt included).
  size_t max_attempts = 4;
  /// Backoff before the first retry; doubles (by `backoff_multiplier`) on
  /// every further retry, capped at `max_backoff_s`.
  double initial_backoff_s = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 5.0;
  /// Multiplicative jitter: the delay is scaled by a deterministic uniform
  /// draw from [1 - jitter_frac, 1 + jitter_frac], decorrelating retry
  /// storms across concurrent queries.
  double jitter_frac = 0.2;
  /// Hard wall-clock budget for one query across all attempts and backoff
  /// waits. Exceeding it fails the query with Status::Timeout.
  double query_budget_s = std::numeric_limits<double>::infinity();
};

/// \brief Capped exponential backoff with deterministic jitter.
///
/// Header-only so the integrator (which the QCC library itself links
/// against) can use it without a dependency cycle. All randomness comes
/// from a caller-supplied Rng, keeping simulated retry schedules
/// reproducible.
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyConfig config = {}) : config_(config) {}

  /// May another attempt start, given `attempts_so_far` completed attempts
  /// and `elapsed_s` seconds spent on this query?
  bool AllowRetry(size_t attempts_so_far, double elapsed_s) const {
    return attempts_so_far < config_.max_attempts &&
           elapsed_s < config_.query_budget_s;
  }

  /// Backoff before attempt `attempts_so_far + 1` (attempts_so_far >= 1).
  /// Deterministic given the Rng state.
  double BackoffDelay(size_t attempts_so_far, Rng* rng) const {
    const double exponent =
        attempts_so_far > 0 ? static_cast<double>(attempts_so_far - 1) : 0.0;
    double delay = config_.initial_backoff_s *
                   std::pow(config_.backoff_multiplier, exponent);
    delay = std::min(delay, config_.max_backoff_s);
    if (rng != nullptr && config_.jitter_frac > 0.0) {
      delay *= rng->UniformDouble(1.0 - config_.jitter_frac,
                                  1.0 + config_.jitter_frac);
    }
    return std::max(0.0, delay);
  }

  /// Budget left after `elapsed_s` seconds (never negative).
  double RemainingBudget(double elapsed_s) const {
    return std::max(0.0, config_.query_budget_s - elapsed_s);
  }

  const RetryPolicyConfig& config() const { return config_; }

 private:
  RetryPolicyConfig config_;
};

}  // namespace fedcal
