#pragma once

#include <algorithm>

#include "common/running_stats.h"

namespace fedcal {

/// \brief The workload cost calibration factor for the integrator itself
/// (§3.2).
///
/// The II cost model knows nothing about the load on the machine hosting
/// the integrator; this class maintains the ratio between the estimated
/// and observed local merge/aggregation times and calibrates future merge
/// estimates. Kept in a table separate from the fragment factors, as the
/// paper specifies.
class IiCalibration {
 public:
  explicit IiCalibration(size_t window = 64, double min_factor = 0.02,
                         double max_factor = 200.0)
      : estimated_(window),
        observed_(window),
        min_factor_(min_factor),
        max_factor_(max_factor) {}

  void Record(double estimated, double observed) {
    if (estimated <= 0.0 || observed < 0.0) return;
    estimated_.Add(estimated);
    observed_.Add(observed);
  }

  /// mean(observed) / mean(estimated); 1.0 before any sample.
  double Factor() const {
    if (estimated_.empty() || estimated_.mean() <= 0.0) return 1.0;
    return std::clamp(observed_.mean() / estimated_.mean(), min_factor_,
                      max_factor_);
  }

  double Calibrate(double estimated) const { return estimated * Factor(); }

  size_t samples() const { return estimated_.size(); }
  void Clear() {
    estimated_.Clear();
    observed_.Clear();
  }

 private:
  SlidingWindow estimated_;
  SlidingWindow observed_;
  double min_factor_;
  double max_factor_;
};

}  // namespace fedcal
