#pragma once

#include <string>
#include <vector>

#include "catalog/global_catalog.h"
#include "metawrapper/meta_wrapper.h"

namespace fedcal {

/// \brief One data-placement suggestion: replicate a hot nickname onto an
/// underutilized server.
struct ReplicaRecommendation {
  std::string nickname;
  std::string source_server;  ///< existing replica to copy from
  std::string target_server;  ///< where the new replica should go
  double nickname_workload_seconds = 0.0;  ///< observed fragment time
  double target_workload_seconds = 0.0;    ///< observed load at target
  std::string rationale;
};

/// \brief Advisor tuning.
struct ReplicaAdvisorConfig {
  /// Nicknames below this observed workload are never replicated.
  double min_workload_seconds = 0.0;
  size_t max_recommendations = 3;
};

/// \brief Data-placement advisor (the paper's §7 future work:
/// "incorporation of data placement strategies in conjunction with QCC").
///
/// QCC already measures, per server and fragment, where the workload's
/// time is actually spent — the meta-wrapper logs hold (statement, server,
/// estimate, observation) tuples. The advisor mines those logs to find the
/// nicknames carrying the most observed execution time, and proposes
/// replicating them from an existing location onto the least-loaded server
/// that does not yet host them. Once a recommendation is applied, the new
/// location becomes an equivalent data source: the optimizer (and QCC's
/// round-robin balancer) pick it up automatically on the next compile.
class ReplicaAdvisor {
 public:
  ReplicaAdvisor(GlobalCatalog* catalog, MetaWrapper* meta_wrapper,
                 ReplicaAdvisorConfig config = {})
      : catalog_(catalog), meta_wrapper_(meta_wrapper), config_(config) {}

  /// Mines the meta-wrapper logs and returns recommendations, hottest
  /// nickname first.
  std::vector<ReplicaRecommendation> Analyze() const;

  /// Copies the nickname's table from the source to the target server and
  /// registers the new location in the catalog.
  Status Apply(const ReplicaRecommendation& rec);

 private:
  /// Maps (server, remote table) back to the nickname it implements.
  std::string NicknameOf(const std::string& server_id,
                         const std::string& remote_table) const;

  GlobalCatalog* catalog_;
  MetaWrapper* meta_wrapper_;
  ReplicaAdvisorConfig config_;
};

}  // namespace fedcal
