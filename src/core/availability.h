#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/calibration_store.h"
#include "core/cycle_controller.h"
#include "metawrapper/meta_wrapper.h"
#include "core/clock.h"

namespace fedcal {

/// \brief Availability-daemon tuning (§3.3, §3.4).
struct AvailabilityConfig {
  double probe_period_s = 5.0;
  /// Adapt each server's probe period from its ratio volatility (§3.4).
  bool adapt_cycle = true;
  /// Feed (expected, observed) probe costs into the calibration store to
  /// derive *initial* calibration factors before any real traffic (§2).
  bool bootstrap_calibration = true;
};

/// \brief The daemon programs that periodically access remote sources
/// through the meta-wrapper to verify their availability (§3.3).
///
/// A server marked down has its cost driven to infinity by QCC until a
/// later probe succeeds. Down events can also be reported synchronously
/// (from MW/patroller error logs) via MarkDown().
class AvailabilityMonitor {
 public:
  AvailabilityMonitor(ExecutionContext* sim, MetaWrapper* meta_wrapper,
                      CalibrationStore* store,
                      AvailabilityConfig config = {},
                      CycleControllerConfig cycle_config = {});

  /// Registers a server for periodic probing.
  void Watch(const std::string& server_id);

  void Start();
  void Stop();
  bool running() const { return running_; }

  bool IsDown(const std::string& server_id) const;

  /// Immediate down-mark from a runtime error (log-based detection).
  void MarkDown(const std::string& server_id);
  /// Manual recovery (normally a successful probe does this).
  void MarkUp(const std::string& server_id);

  /// Fires on every *real* up/down transition (`down` is the new state),
  /// whether it came from a daemon probe or log-based detection. QCC uses
  /// this to bump the routing epoch so cached plans re-price.
  using TransitionHook = std::function<void(const std::string& server_id,
                                            bool down)>;
  void SetTransitionHook(TransitionHook hook) {
    transition_hook_ = std::move(hook);
  }

  size_t ProbeCount(const std::string& server_id) const;
  double CurrentPeriod(const std::string& server_id) const;
  std::vector<std::string> watched() const;

  /// Fragment-signature key under which probe calibration samples are
  /// recorded.
  static constexpr size_t kProbeSignature = 0x70726f6265ull;  // "probe"

 private:
  struct Watched {
    std::unique_ptr<PeriodicTask> task;
    bool down = false;
    size_t probes = 0;
  };

  void Probe(const std::string& server_id);
  /// Watch() body; caller holds mu_.
  void WatchLocked(const std::string& server_id);

  ExecutionContext* sim_;
  MetaWrapper* meta_wrapper_;
  CalibrationStore* store_;
  AvailabilityConfig config_;
  CalibrationCycleController cycle_controller_;
  /// Guards servers_ (structure, down flags, probe counts) and running_:
  /// daemons and log-based marks write on the event thread while pricing
  /// threads read IsDown. The transition hook always fires *outside* this
  /// lock — it re-enters pricing (epoch bump -> re-route -> IsDown).
  mutable std::mutex mu_;
  bool running_ = false;
  std::map<std::string, Watched> servers_;
  TransitionHook transition_hook_;
};

}  // namespace fedcal
