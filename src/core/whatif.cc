#include "core/whatif.h"

#include <algorithm>
#include <map>

#include "common/macros.h"
#include "sql/parser.h"

namespace fedcal {

Result<WhatIfSimulator::Enumeration> WhatIfSimulator::EnumerateAlternatives(
    const std::string& sql, size_t max_alternatives_per_server,
    const CalibrationStore* store, double max_server_factor) {
  FEDCAL_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  Decomposer decomposer(catalog_);
  FEDCAL_ASSIGN_OR_RETURN(Decomposition d, decomposer.Decompose(stmt));

  Enumeration out;

  // Candidate servers per fragment, with high-factor servers excluded.
  std::vector<std::vector<std::string>> candidates(d.fragments.size());
  size_t full_subsets = 1;
  size_t kept_subsets = 1;
  for (size_t f = 0; f < d.fragments.size(); ++f) {
    for (const auto& s : d.fragments[f].candidate_servers) {
      if (store && store->ServerFactor(s) > max_server_factor) continue;
      candidates[f].push_back(s);
    }
    if (candidates[f].empty()) {
      // Everything excluded: fall back to the full candidate set rather
      // than failing the query.
      candidates[f] = d.fragments[f].candidate_servers;
    }
    full_subsets *= d.fragments[f].candidate_servers.size();
    kept_subsets *= candidates[f].size();
  }
  out.excluded_subsets = full_subsets - kept_subsets;

  // Cartesian product of per-fragment server choices = the explain-mode
  // subsets.
  std::vector<std::vector<size_t>> subsets{{}};
  for (const auto& c : candidates) {
    std::vector<std::vector<size_t>> next;
    for (const auto& subset : subsets) {
      for (size_t i = 0; i < c.size(); ++i) {
        auto extended = subset;
        extended.push_back(i);
        next.push_back(std::move(extended));
      }
    }
    subsets = std::move(next);
  }

  GlobalOptimizer optimizer(catalog_, meta_wrapper_, ii_profile_);
  std::vector<GlobalPlanOption> winners;
  for (const auto& subset : subsets) {
    // Restrict each fragment to the chosen single server: equivalent to
    // adjusting every other server's cost function to infinity.
    Decomposition restricted = d;
    for (size_t f = 0; f < restricted.fragments.size(); ++f) {
      restricted.fragments[f].candidate_servers = {
          candidates[f][subset[f]]};
    }
    ++out.explain_runs;
    auto plans = optimizer.Enumerate(/*query_id=*/0, restricted,
                                     max_alternatives_per_server,
                                     /*max_global_plans=*/8);
    if (!plans.ok() || plans->empty()) continue;
    // Enumeration is raw-only since the compile/route split; what-if
    // comparisons need the live calibrated view, so price here.
    PriceGlobalPlans(meta_wrapper_->calibrator(), &*plans);
    winners.push_back(std::move(plans->front()));
  }

  // Eliminate dominated plans: among plans on the same server set, keep
  // the cheapest.
  std::map<std::vector<std::string>, GlobalPlanOption> best_per_set;
  for (auto& w : winners) {
    auto it = best_per_set.find(w.server_set);
    if (it == best_per_set.end() ||
        w.total_calibrated_seconds < it->second.total_calibrated_seconds) {
      best_per_set[w.server_set] = std::move(w);
    }
  }
  for (auto& [set, plan] : best_per_set) {
    out.plans.push_back(std::move(plan));
  }
  std::sort(out.plans.begin(), out.plans.end(),
            [](const GlobalPlanOption& a, const GlobalPlanOption& b) {
              return a.total_calibrated_seconds < b.total_calibrated_seconds;
            });

  // Annotate the flight recorder: which alternatives the simulated
  // federated system surfaced, and how much explain work it cost.
  obs::Telemetry& tel = *meta_wrapper_->telemetry();
  const ExecutionContext* sim = tel.tracer.sim();
  tel.recorder.AddNote(
      sim != nullptr ? sim->Now() : 0.0, "whatif",
      "enumerated " + std::to_string(out.plans.size()) +
          " alternative plans in " + std::to_string(out.explain_runs) +
          " explain runs (" + std::to_string(out.excluded_subsets) +
          " subsets excluded by calibration factor)");
  return out;
}

}  // namespace fedcal
