#pragma once

#include <cstdint>
#include <functional>

namespace fedcal {

/// Simulated time, in seconds since simulation start. In serving mode the
/// same axis is a *virtual* clock that advances only through event due
/// times, so timestamps (and everything derived from them: observed
/// costs, calibration factors, routing decisions) are identical between
/// the discrete-event simulator and a single-worker serving run.
using SimTime = double;

/// \brief How a federation executes: the deterministic discrete-event
/// simulator (the oracle) or the wall-clock serving runtime.
enum class ExecMode { kSimulation, kServing };

inline const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kSimulation ? "sim" : "serving";
}

/// \brief The execution-mode seam: a clock plus a timer queue.
///
/// Every component of the federation (meta-wrapper, servers, network,
/// integrator, QCC daemons, telemetry) schedules its work through this
/// interface instead of a concrete simulator, so the same engine runs
/// either on the discrete-event `Simulator` (single-threaded,
/// deterministic, virtual time) or on a `ServingRuntime` (real threads,
/// real timers). Components must not assume which one they are on beyond
/// what `mode()` tells them.
class ExecutionContext {
 public:
  using EventId = uint64_t;
  using Callback = std::function<void()>;

  virtual ~ExecutionContext() = default;

  /// Current time on this context's clock.
  virtual SimTime Now() const = 0;

  /// Schedule `cb` at absolute time `when` (clamped to >= Now()). Events
  /// with equal `when` fire in scheduling order.
  virtual EventId ScheduleAt(SimTime when, Callback cb) = 0;

  /// Schedule `cb` to run `delay` seconds from now (delay clamped >= 0).
  EventId ScheduleAfter(SimTime delay, Callback cb) {
    return ScheduleAt(Now() + (delay < 0 ? 0 : delay), std::move(cb));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled.
  virtual bool Cancel(EventId id) = 0;

  virtual ExecMode mode() const = 0;

  /// Number of client worker threads (1 in simulation).
  virtual int worker_count() const { return 1; }

  /// Run `fn` mutually excluded against event callbacks (and other
  /// exclusive sections). This is the dispatcher-ownership boundary: all
  /// engine state that event callbacks mutate (attempts, tickets, server
  /// queues, network links) may only be touched inside an exclusive
  /// section or an event callback. In simulation everything is one
  /// thread, so this is just a call; the serving runtime takes the
  /// dispatch lock. Reentrant: safe to call from inside an event
  /// callback or another exclusive section.
  virtual void RunExclusive(const std::function<void()>& fn) { fn(); }

  /// Block until `pred()` holds. `pred` is evaluated inside an exclusive
  /// section. In simulation this steps the event loop (and gives up when
  /// the queue drains); in serving mode it waits on event progress.
  virtual void AwaitCondition(const std::function<bool()>& pred) = 0;
};

/// \brief A repeating timer built on an ExecutionContext, used by QCC
/// daemons (availability probes, recalibration cycles, catalog refresh).
///
/// The period may be changed between firings; the change takes effect when
/// the next tick is scheduled. Stop() prevents further firings. Start,
/// Stop, and the tick itself must run on the dispatcher (event callbacks
/// or an exclusive section) — the task holds no lock of its own.
class PeriodicTask {
 public:
  /// `task` runs every `period` seconds, first firing after `initial_delay`.
  PeriodicTask(ExecutionContext* ctx, SimTime period,
               ExecutionContext::Callback task, SimTime initial_delay = 0.0)
      : ctx_(ctx),
        period_(period <= 0 ? 1.0 : period),
        initial_delay_(initial_delay < 0 ? 0.0 : initial_delay),
        task_(std::move(task)) {}

  void Start() {
    if (running_) return;
    running_ = true;
    pending_ = ctx_->ScheduleAfter(initial_delay_, [this] { Tick(); });
  }

  void Stop() {
    if (!running_) return;
    running_ = false;
    ctx_->Cancel(pending_);
    pending_ = 0;
  }

  bool running() const { return running_; }

  SimTime period() const { return period_; }
  /// Adjust the interval for subsequent firings (clamped to > 0).
  void set_period(SimTime period) {
    if (period > 0) period_ = period;
  }

  size_t firings() const { return firings_; }

 private:
  void Tick() {
    if (!running_) return;
    ++firings_;
    task_();
    if (!running_) return;  // the task may have stopped us
    pending_ = ctx_->ScheduleAfter(period_, [this] { Tick(); });
  }

  ExecutionContext* ctx_;
  SimTime period_;
  SimTime initial_delay_;
  ExecutionContext::Callback task_;
  bool running_ = false;
  size_t firings_ = 0;
  ExecutionContext::EventId pending_ = 0;
};

}  // namespace fedcal
