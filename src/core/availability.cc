#include "core/availability.h"

#include "common/logging.h"

namespace fedcal {

AvailabilityMonitor::AvailabilityMonitor(ExecutionContext* sim,
                                         MetaWrapper* meta_wrapper,
                                         CalibrationStore* store,
                                         AvailabilityConfig config,
                                         CycleControllerConfig cycle_config)
    : sim_(sim),
      meta_wrapper_(meta_wrapper),
      store_(store),
      config_(config),
      cycle_controller_(cycle_config) {}

void AvailabilityMonitor::WatchLocked(const std::string& server_id) {
  if (servers_.count(server_id)) return;
  Watched w;
  w.task = std::make_unique<PeriodicTask>(
      sim_, config_.probe_period_s,
      [this, server_id] { Probe(server_id); });
  auto [it, inserted] = servers_.emplace(server_id, std::move(w));
  if (running_ && inserted) it->second.task->Start();
}

void AvailabilityMonitor::Watch(const std::string& server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  WatchLocked(server_id);
}

void AvailabilityMonitor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  for (auto& [id, w] : servers_) w.task->Start();
}

void AvailabilityMonitor::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  running_ = false;
  for (auto& [id, w] : servers_) w.task->Stop();
}

bool AvailabilityMonitor::IsDown(const std::string& server_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = servers_.find(server_id);
  return it != servers_.end() && it->second.down;
}

void AvailabilityMonitor::MarkDown(const std::string& server_id) {
  bool transitioned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(server_id);
    if (it == servers_.end()) {
      WatchLocked(server_id);
      it = servers_.find(server_id);
    }
    transitioned = !it->second.down;
    it->second.down = true;
  }
  if (transitioned) {
    FEDCAL_LOG_INFO << "server " << server_id << " marked DOWN at t="
                    << sim_->Now();
    if (transition_hook_) transition_hook_(server_id, /*down=*/true);
  }
}

void AvailabilityMonitor::MarkUp(const std::string& server_id) {
  bool transitioned = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(server_id);
    if (it == servers_.end()) return;
    transitioned = it->second.down;
    it->second.down = false;
  }
  if (transitioned) {
    FEDCAL_LOG_INFO << "server " << server_id << " back UP at t="
                    << sim_->Now();
    // Ratios observed before the outage may describe a very different
    // regime; start fresh.
    store_->Forget(server_id);
    if (transition_hook_) transition_hook_(server_id, /*down=*/false);
  }
}

size_t AvailabilityMonitor::ProbeCount(const std::string& server_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = servers_.find(server_id);
  return it == servers_.end() ? 0 : it->second.probes;
}

double AvailabilityMonitor::CurrentPeriod(
    const std::string& server_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = servers_.find(server_id);
  return it == servers_.end() ? 0.0 : it->second.task->period();
}

std::vector<std::string> AvailabilityMonitor::watched() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(servers_.size());
  for (const auto& [id, w] : servers_) ids.push_back(id);
  return ids;
}

void AvailabilityMonitor::Probe(const std::string& server_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(server_id);
    if (it == servers_.end()) return;
    ++it->second.probes;
  }

  // The probe itself runs without the lock: it flows through the
  // meta-wrapper and ends in MarkDown/MarkUp, which relock.
  auto result = meta_wrapper_->ProbeServer(server_id);
  if (!result.ok()) {
    MarkDown(server_id);
  } else {
    MarkUp(server_id);
    if (config_.bootstrap_calibration) {
      store_->Record(server_id, kProbeSignature, result->expected_seconds,
                     result->observed_seconds);
    }
  }

  // Adapt the probe cycle only once there is a meaningful volatility
  // signal (§3.4); early on, keep the configured cadence.
  if (config_.adapt_cycle && store_->ServerSamples(server_id) >= 4) {
    const double cv = store_->RatioVolatility(server_id);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(server_id);
    if (it != servers_.end()) {
      it->second.task->set_period(cycle_controller_.RecommendPeriod(cv));
    }
  }
}

}  // namespace fedcal
