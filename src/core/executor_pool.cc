#include "core/executor_pool.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/thread_ident.h"

namespace fedcal {

namespace {
/// The runtime whose dispatch lock the current thread holds (reentrancy
/// guard for RunExclusive, also set while event callbacks run).
thread_local const ServingRuntime* tls_dispatch_owner = nullptr;

double WallSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}
}  // namespace

ServingRuntime::ServingRuntime(ServingConfig config) : config_(config) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.time_scale < 0) config_.time_scale = 0;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  pool_.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    pool_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ServingRuntime::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    sched_live_.store(nullptr, std::memory_order_release);
    return;
  }
  auto m = std::make_unique<SchedMetrics>();
  m->dispatch_lag = &registry->histogram("sched.dispatch_lag_s");
  m->exclusive_wait = &registry->histogram("sched.exclusive_wait_s");
  m->await_wait = &registry->histogram("sched.await_wait_s");
  m->heap_depth = &registry->gauge("sched.heap_depth");
  m->events_fired = &registry->counter("sched.events_fired");
  m->jobs_completed = &registry->counter("sched.jobs_completed");
  m->workers_busy_s = &registry->gauge("sched.workers.busy_s");
  m->workers_idle_s = &registry->gauge("sched.workers.idle_s");
  m->per_worker.reserve(static_cast<size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    const std::string prefix = "sched.worker." + std::to_string(i);
    m->per_worker.emplace_back(&registry->gauge(prefix + ".busy_s"),
                               &registry->gauge(prefix + ".idle_s"));
  }
  sched_metrics_ = std::move(m);
  sched_live_.store(sched_metrics_.get(), std::memory_order_release);
}

ServingRuntime::~ServingRuntime() { Shutdown(); }

ServingRuntime::EventId ServingRuntime::ScheduleAt(SimTime when, Callback cb) {
  const SimTime now = Now();
  if (when < now) when = now;
  const EventId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(heap_mutex_);
    heap_.push(Entry{when, next_seq_++, id, std::move(cb)});
    live_.insert(id);
    depth = heap_.size();
  }
  if (SchedMetrics* m = sched()) m->heap_depth->Set(double(depth));
  heap_cv_.notify_all();
  return id;
}

bool ServingRuntime::Cancel(EventId id) {
  std::lock_guard<std::mutex> lk(heap_mutex_);
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void ServingRuntime::RunEvent(SimTime when, const Callback& cb) {
  // Caller holds dispatch_mutex_.
  tls_dispatch_owner = this;
  // The clock only ever moves forward, to the due time of the event
  // being started. No other thread advances it (they would need the
  // dispatch lock), so a plain store is enough.
  if (when > vnow_.load(std::memory_order_relaxed)) {
    vnow_.store(when, std::memory_order_release);
  }
  fired_.fetch_add(1, std::memory_order_relaxed);
  if (SchedMetrics* m = sched()) m->events_fired->Add();
  cb();
  tls_dispatch_owner = nullptr;
}

void ServingRuntime::DispatchLoop() {
  using Clock = std::chrono::steady_clock;
  SetThisThreadLabel("dispatcher");
  // Wall time of the previous event pop: the next event's wall deadline
  // is this plus its *virtual gap* times time_scale, so gaps cost
  // proportional wall time no matter how far virtual time lags the wall
  // clock (an absolute virtual->wall mapping would collapse to zero wait
  // whenever the runtime idles waiting for submissions).
  Clock::time_point last_pop = Clock::now();
  for (;;) {
    // Phase 1: under the heap lock alone, find a due head (waiting out
    // the scaled gap if configured).
    EventId head_id = 0;
    {
      std::unique_lock<std::mutex> lk(heap_mutex_);
      for (;;) {
        if (stop_) return;
        // Drop cancelled entries sitting at the head.
        while (!heap_.empty() && cancelled_.count(heap_.top().id) != 0) {
          cancelled_.erase(heap_.top().id);
          heap_.pop();
        }
        if (heap_.empty()) {
          heap_cv_.wait(lk);
          last_pop = Clock::now();  // idle time never counts toward a gap
          continue;
        }
        const SimTime when = heap_.top().when;
        head_id = heap_.top().id;
        if (config_.time_scale > 0) {
          const double gap =
              std::max(0.0, when - vnow_.load(std::memory_order_relaxed));
          const auto deadline =
              last_pop +
              std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(gap * config_.time_scale));
          if (Clock::now() < deadline) {
            // Interruptible: an earlier event, a cancellation of the
            // head, or shutdown re-evaluates the wait.
            heap_cv_.wait_until(lk, deadline, [&] {
              return stop_ || heap_.empty() ||
                     heap_.top().id != head_id ||
                     cancelled_.count(head_id) != 0;
            });
            continue;
          }
        }
        break;  // head_id is due
      }
    }
    // Phase 2: take the dispatch lock *before* popping, then re-validate.
    // An event callback or exclusive section that cancels the head or
    // schedules an earlier event must win over a dispatcher that merely
    // peeked — the simulator's strict one-at-a-time pop order, which the
    // differential oracle depends on.
    //
    // Dispatch lag = wall time from "the head is due" (end of phase 1) to
    // the start of its callback: the dispatch-lock wait plus pop
    // overhead. With an idle dispatch lock this is tens of ns; a long-
    // running event callback or exclusive section shows up here first.
    const Clock::time_point due_at = Clock::now();
    {
      Entry e;
      size_t depth = 0;
      std::lock_guard<std::mutex> dl(dispatch_mutex_);
      {
        std::lock_guard<std::mutex> hl(heap_mutex_);
        if (stop_) return;
        if (heap_.empty() || heap_.top().id != head_id ||
            cancelled_.count(head_id) != 0) {
          continue;  // the head changed under us: re-evaluate
        }
        // priority_queue exposes only const top(); the move is safe
        // because the element is popped immediately after.
        e = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        live_.erase(e.id);
        depth = heap_.size();
        last_pop = Clock::now();
      }
      if (SchedMetrics* m = sched()) {
        m->dispatch_lag->Record(WallSeconds(Clock::now() - due_at));
        m->heap_depth->Set(double(depth));
      }
      RunEvent(e.when, e.cb);
    }
    {
      std::lock_guard<std::mutex> pg(progress_mutex_);
    }
    progress_cv_.notify_all();
  }
}

void ServingRuntime::RunExclusive(const std::function<void()>& fn) {
  if (tls_dispatch_owner == this) {
    fn();
    return;
  }
  {
    using Clock = std::chrono::steady_clock;
    SchedMetrics* m = sched();
    const Clock::time_point t0 =
        m != nullptr ? Clock::now() : Clock::time_point{};
    std::lock_guard<std::mutex> lk(dispatch_mutex_);
    if (m != nullptr) m->exclusive_wait->Record(WallSeconds(Clock::now() - t0));
    tls_dispatch_owner = this;
    fn();
    tls_dispatch_owner = nullptr;
  }
  // An exclusive section can complete a query synchronously (e.g. a
  // compile-time failure invoking the done callback inline), so waiters
  // must re-check their predicates.
  {
    std::lock_guard<std::mutex> pg(progress_mutex_);
  }
  progress_cv_.notify_all();
}

void ServingRuntime::AwaitCondition(const std::function<bool()>& pred) {
  // Not RunExclusive: its notify tail re-locks progress_mutex_, which the
  // wait below already holds. Take the dispatch lock directly — the
  // predicate still runs mutually excluded against event callbacks.
  auto eval = [&] {
    std::lock_guard<std::mutex> dl(dispatch_mutex_);
    tls_dispatch_owner = this;
    const bool done = pred();
    tls_dispatch_owner = nullptr;
    return done;
  };
  using Clock = std::chrono::steady_clock;
  SchedMetrics* m = sched();
  const Clock::time_point t0 =
      m != nullptr ? Clock::now() : Clock::time_point{};
  std::unique_lock<std::mutex> lk(progress_mutex_);
  progress_cv_.wait(lk, eval);
  // Total blocked time, predicate evaluations included: how long a
  // closed-loop client waited for the condition it polled.
  if (m != nullptr) m->await_wait->Record(WallSeconds(Clock::now() - t0));
}

void ServingRuntime::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(jobs_mutex_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void ServingRuntime::WaitIdle() {
  std::unique_lock<std::mutex> lk(jobs_mutex_);
  idle_cv_.wait(lk, [&] { return jobs_.empty() && active_jobs_ == 0; });
}

void ServingRuntime::WorkerLoop(int index) {
  using Clock = std::chrono::steady_clock;
  SetThisThreadLabel("worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> job;
    const Clock::time_point idle_start = Clock::now();
    {
      std::unique_lock<std::mutex> lk(jobs_mutex_);
      jobs_cv_.wait(lk, [&] { return pool_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // pool_stop_ with a drained queue
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_jobs_;
    }
    const Clock::time_point busy_start = Clock::now();
    if (SchedMetrics* m = sched()) {
      const double idle = WallSeconds(busy_start - idle_start);
      m->workers_idle_s->Add(idle);
      m->per_worker[size_t(index)].second->Add(idle);
    }
    job();
    if (SchedMetrics* m = sched()) {
      const double busy = WallSeconds(Clock::now() - busy_start);
      m->workers_busy_s->Add(busy);
      m->per_worker[size_t(index)].first->Add(busy);
      m->jobs_completed->Add();
    }
    {
      std::lock_guard<std::mutex> lk(jobs_mutex_);
      --active_jobs_;
    }
    idle_cv_.notify_all();
  }
}

void ServingRuntime::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(jobs_mutex_);
    if (pool_stop_ && pool_.empty() && !dispatcher_.joinable()) return;
    pool_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (auto& t : pool_) {
    if (t.joinable()) t.join();
  }
  pool_.clear();
  {
    std::lock_guard<std::mutex> lk(heap_mutex_);
    stop_ = true;
  }
  heap_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace fedcal
