#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/clock.h"

namespace fedcal {

/// \brief Circuit-breaker lifecycle: closed (normal traffic), open (server
/// priced at infinity), half-open (probation: probes may close it again).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

/// \brief Tuning for the per-server circuit breakers.
struct CircuitBreakerConfig {
  /// Consecutive failures (errors or timeouts) that trip the breaker.
  size_t failure_threshold = 5;
  /// Cool-down after tripping before the breaker turns half-open.
  double open_duration_s = 10.0;
  /// Every re-trip lengthens the cool-down by this factor (capped), so a
  /// persistently sick server is probed less and less often.
  double open_backoff_multiplier = 2.0;
  double max_open_duration_s = 120.0;
  /// Consecutive successes in half-open needed to close again.
  size_t half_open_successes = 2;
};

/// \brief One server's breaker: a consecutive-failure counter with
/// time-based open -> half-open decay.
///
/// Transitions are computed lazily against the simulated clock, so the
/// breaker needs no timer events of its own: QCC asks for the state when
/// pricing a plan, and the availability daemons' probes supply the
/// half-open successes that close it (§3.3's probe machinery doubles as
/// the breaker's trial traffic).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {})
      : config_(config), current_open_duration_(config.open_duration_s) {}

  /// Current state at simulated time `now` (applies any pending
  /// open -> half-open transition).
  BreakerState State(SimTime now) const;

  /// False only while fully open: half-open admits (trial) traffic.
  bool Allows(SimTime now) const { return State(now) != BreakerState::kOpen; }

  void RecordSuccess(SimTime now);
  void RecordFailure(SimTime now);

  void Reset();

  size_t consecutive_failures() const { return consecutive_failures_; }
  size_t times_opened() const { return times_opened_; }
  SimTime opened_at() const { return opened_at_; }
  double current_open_duration() const { return current_open_duration_; }

  const CircuitBreakerConfig& config() const { return config_; }

 private:
  void Trip(SimTime now);

  CircuitBreakerConfig config_;
  // State decays with time (open -> half-open) even on const queries.
  mutable BreakerState state_ = BreakerState::kClosed;
  size_t consecutive_failures_ = 0;
  size_t half_open_streak_ = 0;
  SimTime opened_at_ = 0.0;
  double current_open_duration_;
  size_t times_opened_ = 0;
};

/// \brief All breakers of the federation, keyed by server id; servers are
/// materialized lazily on first outcome.
class CircuitBreakerBank {
 public:
  explicit CircuitBreakerBank(CircuitBreakerConfig config = {})
      : config_(config) {}

  CircuitBreaker& Get(const std::string& server_id);
  /// nullptr when the server has never recorded an outcome.
  const CircuitBreaker* Find(const std::string& server_id) const;

  /// kClosed for unknown servers.
  BreakerState State(const std::string& server_id, SimTime now) const;
  bool IsOpen(const std::string& server_id, SimTime now) const {
    return State(server_id, now) == BreakerState::kOpen;
  }

  void RecordSuccess(const std::string& server_id, SimTime now) {
    Get(server_id).RecordSuccess(now);
  }
  void RecordFailure(const std::string& server_id, SimTime now) {
    Get(server_id).RecordFailure(now);
  }

  std::vector<std::string> server_ids() const;
  void Clear() { breakers_.clear(); }

  const CircuitBreakerConfig& config() const { return config_; }

 private:
  CircuitBreakerConfig config_;
  std::map<std::string, CircuitBreaker> breakers_;
};

}  // namespace fedcal
