#pragma once

#include <algorithm>

namespace fedcal {

/// \brief Dynamic adjustment of calibration cycles (§3.4).
///
/// Each remote server's network and processing latencies vary at different
/// rates, so the frequency of re-calibration (probe daemons, factor
/// refresh, simulated-catalog refresh) should track how volatile the
/// observed/estimated ratios are. This controller maps a coefficient of
/// variation to a period: volatile servers are probed more often, stable
/// servers less, within [min_period, max_period].
struct CycleControllerConfig {
  double base_period_s = 5.0;
  double min_period_s = 0.5;
  double max_period_s = 60.0;
  /// The CV at which the base period is "right"; above it the cycle
  /// shortens proportionally, below it the cycle lengthens.
  double target_cv = 0.15;
};

class CalibrationCycleController {
 public:
  explicit CalibrationCycleController(CycleControllerConfig config = {})
      : config_(config) {}

  /// Recommended period for a source whose recent ratio history shows the
  /// given coefficient of variation. A zero CV means "no volatility
  /// signal yet" — stay at the base period rather than backing all the
  /// way off.
  double RecommendPeriod(double coefficient_of_variation) const {
    if (coefficient_of_variation <= 0.0) return config_.base_period_s;
    const double period =
        config_.base_period_s *
        (config_.target_cv / coefficient_of_variation);
    return std::clamp(period, config_.min_period_s, config_.max_period_s);
  }

  const CycleControllerConfig& config() const { return config_; }

 private:
  CycleControllerConfig config_;
};

}  // namespace fedcal
