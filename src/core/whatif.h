#pragma once

#include <string>
#include <vector>

#include "core/calibration_store.h"
#include "federation/global_optimizer.h"

namespace fedcal {

/// \brief The simulated federated system (§2, §4.2).
///
/// The real integrator's explain table only keeps the winner plan, so QCC
/// cannot see the losing alternatives it needs for global-level load
/// balancing. This component re-runs query compilation in "explain mode"
/// against restricted server subsets — the paper's trick of pricing every
/// other server at infinity so the optimizer is forced to reveal the best
/// plan for each subset — and assembles the full alternative-plan space
/// from only |product of per-fragment candidate servers| explain runs.
class WhatIfSimulator {
 public:
  WhatIfSimulator(const GlobalCatalog* catalog, MetaWrapper* meta_wrapper,
                  IiProfile ii_profile = {})
      : catalog_(catalog),
        meta_wrapper_(meta_wrapper),
        ii_profile_(ii_profile) {}

  struct Enumeration {
    /// Per-subset winners with dominated plans eliminated (same server
    /// set, higher cost), cheapest first.
    std::vector<GlobalPlanOption> plans;
    /// How many explain-mode optimizer runs were needed.
    size_t explain_runs = 0;
    /// Subsets skipped because a server's calibration factor exceeded the
    /// exclusion threshold.
    size_t excluded_subsets = 0;
  };

  /// Enumerates alternative global plans for `sql`.
  ///
  /// When `store` is given, servers whose current calibration factor
  /// exceeds `max_server_factor` are excluded from candidate subsets
  /// up-front (the §4.2 search-space reduction).
  Result<Enumeration> EnumerateAlternatives(
      const std::string& sql, size_t max_alternatives_per_server = 2,
      const CalibrationStore* store = nullptr,
      double max_server_factor = 1e18);

 private:
  const GlobalCatalog* catalog_;
  MetaWrapper* meta_wrapper_;
  IiProfile ii_profile_;
};

}  // namespace fedcal
