#include "core/reliability.h"

#include <algorithm>
#include <cmath>

namespace fedcal {

void ReliabilityTracker::RecordSuccess(const std::string& server_id) {
  auto it = windows_.find(server_id);
  if (it == windows_.end()) {
    it = windows_.emplace(server_id, SlidingWindow(config_.window)).first;
  }
  it->second.Add(1.0);
}

void ReliabilityTracker::RecordError(const std::string& server_id) {
  auto it = windows_.find(server_id);
  if (it == windows_.end()) {
    it = windows_.emplace(server_id, SlidingWindow(config_.window)).first;
  }
  it->second.Add(0.0);
}

double ReliabilityTracker::SuccessRate(const std::string& server_id) const {
  auto it = windows_.find(server_id);
  if (it == windows_.end() || it->second.empty()) return 1.0;
  const double successes = it->second.sum() + config_.smoothing;
  const double total =
      static_cast<double>(it->second.size()) + config_.smoothing;
  return std::clamp(successes / total, 1e-6, 1.0);
}

double ReliabilityTracker::CostMultiplier(
    const std::string& server_id) const {
  const double rate = SuccessRate(server_id);
  const double multiplier =
      std::pow(1.0 / rate, config_.penalty_exponent);
  return std::min(multiplier, config_.max_multiplier);
}

size_t ReliabilityTracker::Outcomes(const std::string& server_id) const {
  auto it = windows_.find(server_id);
  return it == windows_.end() ? 0 : it->second.size();
}

void ReliabilityTracker::Forget(const std::string& server_id) {
  windows_.erase(server_id);
}

}  // namespace fedcal
