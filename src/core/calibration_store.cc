#include "core/calibration_store.h"

#include <algorithm>
#include <cmath>

namespace fedcal {

void CalibrationStore::Record(const std::string& server_id, size_t signature,
                              double estimated, double observed) {
  if (estimated <= 0.0 || observed < 0.0) return;
  auto record = [&](PairedWindow& w) {
    w.estimated.Add(estimated);
    w.observed.Add(observed);
    w.ratios.Add(observed / estimated);
  };
  auto sit = per_server_.find(server_id);
  if (sit == per_server_.end()) {
    sit = per_server_.emplace(server_id, PairedWindow(config_.window)).first;
  }
  record(sit->second);

  if (config_.per_fragment) {
    const auto key = std::make_pair(server_id, signature);
    auto fit = per_fragment_.find(key);
    if (fit == per_fragment_.end()) {
      fit = per_fragment_.emplace(key, PairedWindow(config_.window)).first;
    }
    record(fit->second);
  }
}

double CalibrationStore::FactorOf(const PairedWindow& w) const {
  if (w.estimated.size() < config_.min_samples || w.estimated.mean() <= 0.0) {
    return 1.0;
  }
  const double factor = w.observed.mean() / w.estimated.mean();
  return std::clamp(factor, config_.min_factor, config_.max_factor);
}

double CalibrationStore::ServerFactor(const std::string& server_id) const {
  auto it = per_server_.find(server_id);
  return it == per_server_.end() ? 1.0 : FactorOf(it->second);
}

double CalibrationStore::FragmentFactor(const std::string& server_id,
                                        size_t signature) const {
  if (config_.per_fragment) {
    auto it = per_fragment_.find(std::make_pair(server_id, signature));
    if (it != per_fragment_.end() &&
        it->second.estimated.size() >= config_.min_samples) {
      return FactorOf(it->second);
    }
  }
  return ServerFactor(server_id);
}

double CalibrationStore::Calibrate(const std::string& server_id,
                                   size_t signature,
                                   double estimated) const {
  return estimated * FragmentFactor(server_id, signature);
}

size_t CalibrationStore::ServerSamples(const std::string& server_id) const {
  auto it = per_server_.find(server_id);
  return it == per_server_.end() ? 0 : it->second.estimated.size();
}

size_t CalibrationStore::FragmentSamples(const std::string& server_id,
                                         size_t signature) const {
  auto it = per_fragment_.find(std::make_pair(server_id, signature));
  return it == per_fragment_.end() ? 0 : it->second.estimated.size();
}

double CalibrationStore::RatioVolatility(const std::string& server_id) const {
  auto it = per_server_.find(server_id);
  if (it == per_server_.end() || it->second.ratios.size() < 2) return 0.0;
  const double mean = it->second.ratios.mean();
  if (mean <= 0.0) return 0.0;
  return std::sqrt(it->second.ratios.variance()) / mean;
}

void CalibrationStore::Forget(const std::string& server_id) {
  per_server_.erase(server_id);
  for (auto it = per_fragment_.begin(); it != per_fragment_.end();) {
    if (it->first.first == server_id) {
      it = per_fragment_.erase(it);
    } else {
      ++it;
    }
  }
}

void CalibrationStore::Clear() {
  per_server_.clear();
  per_fragment_.clear();
}

std::vector<std::string> CalibrationStore::server_ids() const {
  std::vector<std::string> ids;
  ids.reserve(per_server_.size());
  for (const auto& [id, w] : per_server_) ids.push_back(id);
  return ids;
}

}  // namespace fedcal
