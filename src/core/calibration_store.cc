#include "core/calibration_store.h"

#include <algorithm>
#include <cmath>

namespace fedcal {

void CalibrationStore::Record(const std::string& server_id, size_t signature,
                              double estimated, double observed) {
  if (estimated <= 0.0 || observed < 0.0) return;
  auto record = [&](PairedWindow& w) {
    w.estimated.Add(estimated);
    w.observed.Add(observed);
    w.ratios.Add(observed / estimated);
  };
  Shard& shard = ShardFor(server_id);
  {
    std::lock_guard<obs::TimedMutex> lock(shard.mu);
    auto sit = shard.per_server.find(server_id);
    if (sit == shard.per_server.end()) {
      sit = shard.per_server.emplace(server_id, PairedWindow(config_.window))
                .first;
    }
    record(sit->second);

    if (config_.per_fragment) {
      const auto key = std::make_pair(server_id, signature);
      auto fit = shard.per_fragment.find(key);
      if (fit == shard.per_fragment.end()) {
        fit = shard.per_fragment.emplace(key, PairedWindow(config_.window))
                  .first;
      }
      record(fit->second);
    }
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
}

double CalibrationStore::FactorOf(const PairedWindow& w) const {
  if (w.estimated.size() < config_.min_samples || w.estimated.mean() <= 0.0) {
    return 1.0;
  }
  const double factor = w.observed.mean() / w.estimated.mean();
  return std::clamp(factor, config_.min_factor, config_.max_factor);
}

double CalibrationStore::ServerFactor(const std::string& server_id) const {
  const Shard& shard = ShardFor(server_id);
  std::lock_guard<obs::TimedMutex> lock(shard.mu);
  auto it = shard.per_server.find(server_id);
  return it == shard.per_server.end() ? 1.0 : FactorOf(it->second);
}

double CalibrationStore::FragmentFactor(const std::string& server_id,
                                        size_t signature) const {
  const Shard& shard = ShardFor(server_id);
  std::lock_guard<obs::TimedMutex> lock(shard.mu);
  if (config_.per_fragment) {
    auto it = shard.per_fragment.find(std::make_pair(server_id, signature));
    if (it != shard.per_fragment.end() &&
        it->second.estimated.size() >= config_.min_samples) {
      return FactorOf(it->second);
    }
  }
  auto sit = shard.per_server.find(server_id);
  return sit == shard.per_server.end() ? 1.0 : FactorOf(sit->second);
}

double CalibrationStore::Calibrate(const std::string& server_id,
                                   size_t signature,
                                   double estimated) const {
  return estimated * FragmentFactor(server_id, signature);
}

size_t CalibrationStore::ServerSamples(const std::string& server_id) const {
  const Shard& shard = ShardFor(server_id);
  std::lock_guard<obs::TimedMutex> lock(shard.mu);
  auto it = shard.per_server.find(server_id);
  return it == shard.per_server.end() ? 0 : it->second.estimated.size();
}

size_t CalibrationStore::FragmentSamples(const std::string& server_id,
                                         size_t signature) const {
  const Shard& shard = ShardFor(server_id);
  std::lock_guard<obs::TimedMutex> lock(shard.mu);
  auto it = shard.per_fragment.find(std::make_pair(server_id, signature));
  return it == shard.per_fragment.end() ? 0 : it->second.estimated.size();
}

double CalibrationStore::RatioVolatility(const std::string& server_id) const {
  const Shard& shard = ShardFor(server_id);
  std::lock_guard<obs::TimedMutex> lock(shard.mu);
  auto it = shard.per_server.find(server_id);
  if (it == shard.per_server.end() || it->second.ratios.size() < 2) {
    return 0.0;
  }
  const double mean = it->second.ratios.mean();
  if (mean <= 0.0) return 0.0;
  return std::sqrt(it->second.ratios.variance()) / mean;
}

void CalibrationStore::Forget(const std::string& server_id) {
  Shard& shard = ShardFor(server_id);
  {
    std::lock_guard<obs::TimedMutex> lock(shard.mu);
    shard.per_server.erase(server_id);
    for (auto it = shard.per_fragment.begin();
         it != shard.per_fragment.end();) {
      if (it->first.first == server_id) {
        it = shard.per_fragment.erase(it);
      } else {
        ++it;
      }
    }
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
}

void CalibrationStore::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<obs::TimedMutex> lock(shard.mu);
    shard.per_server.clear();
    shard.per_fragment.clear();
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
}

std::vector<std::string> CalibrationStore::server_ids() const {
  std::vector<std::string> ids;
  for (const Shard& shard : shards_) {
    std::lock_guard<obs::TimedMutex> lock(shard.mu);
    for (const auto& [id, w] : shard.per_server) ids.push_back(id);
  }
  // Shard order is hash order; restore the sorted order the single-map
  // store used to produce.
  std::sort(ids.begin(), ids.end());
  return ids;
}

CalibrationSnapshotPtr CalibrationStore::Snapshot() const {
  const uint64_t current = version_.load(std::memory_order_acquire);
  std::lock_guard<obs::TimedMutex> cache_lock(snapshot_mu_);
  if (cached_snapshot_ != nullptr && cached_snapshot_->version == current) {
    return cached_snapshot_;
  }
  auto snap = std::make_shared<CalibrationSnapshot>();
  // Versions recorded between the load above and the shard walks below
  // are picked up by the *next* Snapshot call: the snapshot is tagged
  // with the version read first, so it can only understate what it has
  // absorbed, never claim observations it missed.
  snap->version = current;
  for (const Shard& shard : shards_) {
    std::lock_guard<obs::TimedMutex> lock(shard.mu);
    for (const auto& [id, w] : shard.per_server) {
      snap->server_factor.emplace(id, FactorOf(w));
    }
    for (const auto& [key, w] : shard.per_fragment) {
      // Mirror the live fallback rule: the per-fragment factor only
      // exists once its window met min_samples.
      if (config_.per_fragment &&
          w.estimated.size() >= config_.min_samples) {
        snap->fragment_factor.emplace(key, FactorOf(w));
      }
    }
  }
  cached_snapshot_ = std::move(snap);
  return cached_snapshot_;
}

}  // namespace fedcal
