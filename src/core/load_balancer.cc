#include "core/load_balancer.h"

#include <algorithm>
#include <map>

#include "sql/parser.h"

namespace fedcal {

LoadBalancer::QueryTypeState& LoadBalancer::StateFor(size_t signature) {
  auto it = per_type_.find(signature);
  if (it == per_type_.end()) {
    QueryTypeState st;
    st.period_start = sim_->Now();
    it = per_type_.emplace(signature, st).first;
  }
  QueryTypeState& st = it->second;
  if (sim_->Now() - st.period_start >= config_.period_seconds) {
    st.period_start = sim_->Now();
    st.workload_in_period = 0.0;
  }
  return st;
}

std::vector<size_t> LoadBalancer::GlobalGroup(
    const std::vector<GlobalPlanOption>& options) const {
  // Per server set, keep only the cheapest plan ("for global query plans
  // whose fragment queries are executed on the same set of servers, QCC
  // picks the cheapest plan").
  std::map<std::vector<std::string>, size_t> cheapest_per_set;
  for (size_t i = 0; i < options.size(); ++i) {
    auto it = cheapest_per_set.find(options[i].server_set);
    if (it == cheapest_per_set.end() ||
        options[i].total_calibrated_seconds <
            options[it->second].total_calibrated_seconds) {
      cheapest_per_set[options[i].server_set] = i;
    }
  }
  // Cheapest overall plus alternatives within the tolerance.
  size_t best = 0;
  for (const auto& [set, idx] : cheapest_per_set) {
    if (options[idx].total_calibrated_seconds <
        options[best].total_calibrated_seconds) {
      best = idx;
    }
  }
  const double limit = options[best].total_calibrated_seconds *
                       (1.0 + config_.cost_tolerance);
  std::vector<size_t> group;
  for (const auto& [set, idx] : cheapest_per_set) {
    if (options[idx].total_calibrated_seconds <= limit) {
      group.push_back(idx);
    }
  }
  std::sort(group.begin(), group.end());
  return group;
}

std::vector<size_t> LoadBalancer::FragmentGroup(
    const std::vector<GlobalPlanOption>& options) const {
  const GlobalPlanOption& base = options[0];
  std::vector<size_t> group;
  for (size_t i = 0; i < options.size(); ++i) {
    const GlobalPlanOption& cand = options[i];
    if (cand.fragment_choices.size() != base.fragment_choices.size()) {
      continue;
    }
    bool exchangeable = true;
    for (size_t f = 0; f < base.fragment_choices.size(); ++f) {
      const auto& bw = base.fragment_choices[f].wrapper_plan;
      const auto& cw = cand.fragment_choices[f].wrapper_plan;
      if (bw.identity == cw.identity && bw.server_id == cw.server_id) {
        continue;  // same choice
      }
      // Substituted fragment plan must be identical in shape and close in
      // calibrated cost (§4.1).
      if (cw.shape != bw.shape) {
        exchangeable = false;
        break;
      }
      const double base_cost =
          base.fragment_choices[f].cost.calibrated_seconds;
      const double cand_cost =
          cand.fragment_choices[f].cost.calibrated_seconds;
      if (cand_cost > base_cost * (1.0 + config_.cost_tolerance)) {
        exchangeable = false;
        break;
      }
    }
    if (exchangeable) group.push_back(i);
  }
  return group;
}

size_t LoadBalancer::SelectPlan(const QueryContext& ctx,
                                const std::vector<GlobalPlanOption>& options) {
  return SelectPlanExplained(ctx, options).chosen;
}

size_t LoadBalancer::SelectPlan(uint64_t query_id, const std::string& sql,
                                const std::vector<GlobalPlanOption>& options) {
  return SelectPlanExplained(query_id, sql, options).chosen;
}

PlanSelection LoadBalancer::SelectPlanExplained(
    const QueryContext& ctx, const std::vector<GlobalPlanOption>& options) {
  if (ctx.type_signature != 0) {
    return SelectPlanExplained(ctx.type_signature, options);
  }
  return SelectPlanExplained(ctx.query_id, ctx.sql, options);
}

PlanSelection LoadBalancer::SelectPlanExplained(
    uint64_t query_id, const std::string& sql,
    const std::vector<GlobalPlanOption>& options) {
  (void)query_id;
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) {
    // Unparseable statement: no query type to rotate on, take cheapest.
    PlanSelection selection;
    selection.level = config_.level;
    return selection;
  }
  return SelectPlanExplained(SignatureOf(*stmt), options);
}

PlanSelection LoadBalancer::SelectPlanExplained(
    size_t signature, const std::vector<GlobalPlanOption>& options) {
  PlanSelection selection;
  selection.level = config_.level;
  if (options.empty()) return selection;
  if (config_.level == LoadBalanceConfig::Level::kNone || options.size() == 1) {
    return selection;
  }

  QueryTypeState& st = StateFor(signature);
  st.workload_in_period += options[0].total_calibrated_seconds;
  selection.workload_in_period = st.workload_in_period;
  if (st.workload_in_period < config_.workload_threshold) {
    st.last_group_size = 1;
    selection.workload_threshold_met = false;
    return selection;
  }

  const std::vector<size_t> group =
      config_.level == LoadBalanceConfig::Level::kGlobal
          ? GlobalGroup(options)
          : FragmentGroup(options);
  st.last_group_size = group.size();
  selection.group = group;
  if (group.empty()) return selection;
  selection.rotation_counter = st.rotation;
  selection.chosen = group[st.rotation++ % group.size()];
  return selection;
}

size_t LoadBalancer::LastGroupSize(size_t signature) const {
  auto it = per_type_.find(signature);
  return it == per_type_.end() ? 0 : it->second.last_group_size;
}

}  // namespace fedcal
