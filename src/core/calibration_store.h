#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/running_stats.h"
#include "common/timed_mutex.h"

namespace fedcal {

/// \brief Tuning of the calibration-factor computation (§3.1).
struct CalibrationConfig {
  /// Sliding-window length for the running averages of estimated and
  /// observed costs.
  size_t window = 64;
  /// Clamp on the resulting factor so one wild outlier cannot permanently
  /// poison routing.
  double min_factor = 0.02;
  double max_factor = 200.0;
  /// Observations required before a factor other than 1.0 is reported.
  size_t min_samples = 1;
  /// Prefer the per-fragment-signature factor when it has enough samples;
  /// otherwise fall back to the per-server factor.
  bool per_fragment = true;
};

/// \brief Immutable point-in-time view of every resolved calibration
/// factor — the read path of concurrent plan pricing.
///
/// A snapshot stores the *resolved* factors (min-samples and clamping
/// already applied), so answering a factor query is one map lookup with
/// no locks and no arithmetic. Route pins one snapshot for the duration
/// of a pricing pass: every fragment of every candidate plan is priced
/// against the same factors even while workers keep recording fresh
/// observations into the store.
struct CalibrationSnapshot {
  /// The store version this snapshot was built from.
  uint64_t version = 0;
  /// server_id -> resolved per-server factor (servers with history only).
  std::map<std::string, double> server_factor;
  /// (server_id, signature) -> resolved per-fragment factor; entries
  /// exist only when the fragment window met min_samples, mirroring the
  /// live fallback rule exactly.
  std::map<std::pair<std::string, size_t>, double> fragment_factor;

  double ServerFactorOf(const std::string& server_id) const {
    auto it = server_factor.find(server_id);
    return it == server_factor.end() ? 1.0 : it->second;
  }
  double FragmentFactorOf(const std::string& server_id,
                          size_t signature) const {
    auto it = fragment_factor.find(std::make_pair(server_id, signature));
    return it == fragment_factor.end() ? ServerFactorOf(server_id)
                                       : it->second;
  }
  double Calibrate(const std::string& server_id, size_t signature,
                   double estimated) const {
    return estimated * FragmentFactorOf(server_id, signature);
  }
};

using CalibrationSnapshotPtr = std::shared_ptr<const CalibrationSnapshot>;

/// \brief The query fragment processing cost calibration factors (§3.1).
///
/// For every remote server (and, when runtime statistics are available,
/// every fragment signature at that server) the store keeps running
/// averages of estimated and observed fragment costs. The calibration
/// factor is the ratio of the average runtime cost to the average
/// estimated cost — the paper's exact definition — and multiplies future
/// estimates for yet-unseen fragments of the same server.
///
/// Concurrency: state is sharded by server id behind per-shard mutexes,
/// so N workers recording observations for different servers never
/// contend, and a pricing pass reading one server's factor only touches
/// that server's shard. Snapshot() additionally provides a lock-free read
/// path: an immutable copy of all resolved factors, cached and rebuilt
/// only when the store's version has moved.
class CalibrationStore {
 public:
  static constexpr size_t kShards = 8;

  explicit CalibrationStore(CalibrationConfig config = {})
      : config_(config) {}

  /// Records one (estimated, observed) cost pair for a fragment execution.
  void Record(const std::string& server_id, size_t signature,
              double estimated, double observed);

  /// Per-server factor: mean(observed) / mean(estimated); 1.0 before
  /// min_samples observations.
  double ServerFactor(const std::string& server_id) const;

  /// Per-(server, fragment-signature) factor, falling back to the server
  /// factor and then 1.0.
  double FragmentFactor(const std::string& server_id,
                        size_t signature) const;

  /// estimate × applicable factor.
  double Calibrate(const std::string& server_id, size_t signature,
                   double estimated) const;

  /// Number of samples currently windowed for a server.
  size_t ServerSamples(const std::string& server_id) const;
  size_t FragmentSamples(const std::string& server_id,
                         size_t signature) const;

  /// Volatility of the recent observed/estimated ratios at a server
  /// (coefficient of variation) — the §3.4 cycle-adaptation signal.
  double RatioVolatility(const std::string& server_id) const;

  /// Drops all history for one server (used after availability flaps,
  /// when stale ratios no longer describe the server).
  void Forget(const std::string& server_id);
  void Clear();

  std::vector<std::string> server_ids() const;
  const CalibrationConfig& config() const { return config_; }

  /// Monotonic change counter: every Record/Forget/Clear advances it.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Immutable view of all resolved factors at this instant. Cached:
  /// repeated calls while the version is unchanged return the same
  /// object, so a pricing pass in steady state costs one atomic load and
  /// one shared_ptr copy.
  CalibrationSnapshotPtr Snapshot() const;

 private:
  struct PairedWindow {
    SlidingWindow estimated;
    SlidingWindow observed;
    SlidingWindow ratios;

    explicit PairedWindow(size_t capacity)
        : estimated(capacity), observed(capacity), ratios(capacity) {}
  };

  /// One lock domain: the servers hashing here and their fragment
  /// windows. Forget(server) therefore touches exactly one shard.
  struct Shard {
    /// All shards share one contention site: the panel answers "are the
    /// calibration shards hot?", not "which of the 8".
    mutable obs::TimedMutex mu{"calibration_store.shard"};
    std::map<std::string, PairedWindow> per_server;
    std::map<std::pair<std::string, size_t>, PairedWindow> per_fragment;
  };

  Shard& ShardFor(const std::string& server_id) {
    return shards_[std::hash<std::string>{}(server_id) % kShards];
  }
  const Shard& ShardFor(const std::string& server_id) const {
    return shards_[std::hash<std::string>{}(server_id) % kShards];
  }

  double FactorOf(const PairedWindow& w) const;

  CalibrationConfig config_;
  std::array<Shard, kShards> shards_;
  std::atomic<uint64_t> version_{0};

  /// Snapshot cache: rebuilt lazily when version_ has moved past the
  /// cached snapshot's version.
  mutable obs::TimedMutex snapshot_mu_{"calibration_store.snapshot"};
  mutable CalibrationSnapshotPtr cached_snapshot_;
};

}  // namespace fedcal
