#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/running_stats.h"

namespace fedcal {

/// \brief Tuning of the calibration-factor computation (§3.1).
struct CalibrationConfig {
  /// Sliding-window length for the running averages of estimated and
  /// observed costs.
  size_t window = 64;
  /// Clamp on the resulting factor so one wild outlier cannot permanently
  /// poison routing.
  double min_factor = 0.02;
  double max_factor = 200.0;
  /// Observations required before a factor other than 1.0 is reported.
  size_t min_samples = 1;
  /// Prefer the per-fragment-signature factor when it has enough samples;
  /// otherwise fall back to the per-server factor.
  bool per_fragment = true;
};

/// \brief The query fragment processing cost calibration factors (§3.1).
///
/// For every remote server (and, when runtime statistics are available,
/// every fragment signature at that server) the store keeps running
/// averages of estimated and observed fragment costs. The calibration
/// factor is the ratio of the average runtime cost to the average
/// estimated cost — the paper's exact definition — and multiplies future
/// estimates for yet-unseen fragments of the same server.
class CalibrationStore {
 public:
  explicit CalibrationStore(CalibrationConfig config = {})
      : config_(config) {}

  /// Records one (estimated, observed) cost pair for a fragment execution.
  void Record(const std::string& server_id, size_t signature,
              double estimated, double observed);

  /// Per-server factor: mean(observed) / mean(estimated); 1.0 before
  /// min_samples observations.
  double ServerFactor(const std::string& server_id) const;

  /// Per-(server, fragment-signature) factor, falling back to the server
  /// factor and then 1.0.
  double FragmentFactor(const std::string& server_id,
                        size_t signature) const;

  /// estimate × applicable factor.
  double Calibrate(const std::string& server_id, size_t signature,
                   double estimated) const;

  /// Number of samples currently windowed for a server.
  size_t ServerSamples(const std::string& server_id) const;
  size_t FragmentSamples(const std::string& server_id,
                         size_t signature) const;

  /// Volatility of the recent observed/estimated ratios at a server
  /// (coefficient of variation) — the §3.4 cycle-adaptation signal.
  double RatioVolatility(const std::string& server_id) const;

  /// Drops all history for one server (used after availability flaps,
  /// when stale ratios no longer describe the server).
  void Forget(const std::string& server_id);
  void Clear();

  std::vector<std::string> server_ids() const;
  const CalibrationConfig& config() const { return config_; }

 private:
  struct PairedWindow {
    SlidingWindow estimated;
    SlidingWindow observed;
    SlidingWindow ratios;

    explicit PairedWindow(size_t capacity)
        : estimated(capacity), observed(capacity), ratios(capacity) {}
  };

  double FactorOf(const PairedWindow& w) const;

  CalibrationConfig config_;
  std::map<std::string, PairedWindow> per_server_;
  std::map<std::pair<std::string, size_t>, PairedWindow> per_fragment_;
};

}  // namespace fedcal
