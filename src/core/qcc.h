#pragma once

#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/availability.h"
#include "core/calibration_store.h"
#include "core/circuit_breaker.h"
#include "core/cycle_controller.h"
#include "core/ii_calibration.h"
#include "core/load_balancer.h"
#include "core/reliability.h"
#include "core/whatif.h"
#include "federation/integrator.h"
#include "metawrapper/calibrator_interface.h"

namespace fedcal {

/// \brief Everything tunable about QCC in one place.
struct QccConfig {
  CalibrationConfig calibration;
  ReliabilityConfig reliability;
  AvailabilityConfig availability;
  CycleControllerConfig cycle;
  LoadBalanceConfig load_balance;
  CircuitBreakerConfig breaker;

  /// Master switch for transparent cost calibration (§3.1/§3.2). Off, QCC
  /// still observes but returns estimates unchanged — useful for A/B
  /// comparisons against the paper's baseline.
  bool enable_calibration = true;
  /// Incorporate the reliability multiplier into calibrated costs (§3.3).
  bool enable_reliability = true;
  /// Run the availability daemons (§3.3).
  bool enable_availability_daemon = true;
  /// Detect down events synchronously from MW/patroller error logs.
  bool detect_down_from_logs = true;
  /// Per-server circuit breakers: repeated errors trip a server to
  /// infinite calibrated cost until half-open probes succeed. Catches
  /// fail-slow/error-burst servers that §3.3's binary up/down daemons
  /// miss.
  bool enable_circuit_breaker = true;
};

/// \brief Immutable per-pricing-pass view of everything QCC consults to
/// turn a raw estimate into a calibrated cost: the calibration snapshot
/// plus each server's availability / breaker / reliability state, all
/// captured at BeginPricing time. One query's candidates are priced
/// against one view, so concurrent observation recording can never make
/// a plan comparison internally inconsistent.
struct QccPricingView {
  CalibrationSnapshotPtr calibration;
  struct ServerAux {
    bool down = false;
    bool breaker_open = false;
    double reliability_multiplier = 1.0;
  };
  std::unordered_map<std::string, ServerAux> aux;
  /// §3.2 integration (merge) factor.
  double ii_factor = 1.0;
};

/// \brief The Query Cost Calibrator (the paper's contribution, §3–§4).
///
/// QCC plugs into the meta-wrapper as its CostCalibrator and into the
/// integrator as its PlanSelector. It never touches the optimizer itself:
/// it only rewrites the cost numbers the optimizer sees and (optionally)
/// rotates among near-optimal plans the optimizer produced — exactly the
/// transparent design the paper argues for.
class QueryCostCalibrator : public CostCalibrator, public PlanSelector {
 public:
  QueryCostCalibrator(ExecutionContext* sim, MetaWrapper* meta_wrapper,
                      QccConfig config = {});

  /// Wires QCC into an integrator's meta-wrapper and plan selection,
  /// registers every known server with the availability daemons, and
  /// starts them.
  void AttachTo(Integrator* integrator);
  /// Stops daemons and restores the integrator's default behaviour.
  void Detach(Integrator* integrator);

  // -- CostCalibrator ---------------------------------------------------------

  /// Pins an immutable QccPricingView for the calling thread; every
  /// Calibrate* call until EndPricing prices against it lock-free.
  void BeginPricing() override;
  void EndPricing() override;

  double CalibrateFragmentCost(const std::string& server_id,
                               size_t signature,
                               double estimated_seconds) override;
  double CalibrateIntegrationCost(double estimated_seconds) override;
  void RecordEstimate(const std::string& server_id, size_t signature,
                      double estimated_seconds) override;
  void RecordFragmentObservation(const std::string& server_id,
                                 size_t signature, double estimated_seconds,
                                 double observed_seconds) override;
  void RecordFragmentObservation(const std::string& server_id,
                                 size_t signature, double estimated_seconds,
                                 double observed_seconds,
                                 bool cardinality_suspect) override;
  void RecordIntegrationObservation(double estimated_seconds,
                                    double observed_seconds) override;
  void RecordError(const std::string& server_id,
                   const Status& error) override;
  void RecordSuccess(const std::string& server_id) override;

  // -- PlanSelector -------------------------------------------------------------

  size_t SelectPlan(const QueryContext& ctx,
                    const std::vector<GlobalPlanOption>& options) override;

  // -- Components ----------------------------------------------------------------

  CalibrationStore& store() { return store_; }
  const CalibrationStore& store() const { return store_; }
  ReliabilityTracker& reliability() { return reliability_; }
  AvailabilityMonitor& availability() { return availability_; }
  IiCalibration& ii_calibration() { return ii_calibration_; }
  LoadBalancer& load_balancer() { return load_balancer_; }
  CircuitBreakerBank& breakers() { return breakers_; }
  const CircuitBreakerBank& breakers() const { return breakers_; }
  WhatIfSimulator& whatif() { return whatif_; }
  QccConfig& config() { return config_; }

  static constexpr double kInfiniteCost =
      std::numeric_limits<double>::infinity();

 private:
  /// Assembles and records the flight-recorder DecisionRecord for one
  /// plan selection: every candidate with raw vs calibrated costs and a
  /// rejection reason, the §4 rotation outcome, and the per-server
  /// calibration/reliability/availability/breaker state consulted.
  void RecordDecision(const QueryContext& ctx,
                      const std::vector<GlobalPlanOption>& options,
                      const PlanSelection& selection);
  /// Samples reliability/availability/breaker state into the recorder's
  /// per-server time series and emits breaker-transition events (called
  /// on every outcome QCC learns from).
  void SampleServerState(const std::string& server_id);
  /// Invalidates the attached integrator's prepared-plan cache: cached
  /// compiles must re-price (drift) or re-enumerate under the new state.
  void BumpRoutingEpoch(const std::string& reason);

  /// Builds the pricing view for the servers the meta-wrapper knows,
  /// under state_mu_.
  std::shared_ptr<const QccPricingView> BuildPricingView();

  /// Guards the small mutable aggregates that are not individually
  /// thread-safe: reliability_, breakers_ (whose reads mutate lazily on
  /// time checks), ii_calibration_, load_balancer_ rotation counters, and
  /// last_breaker_. The calibration store shards its own locking and the
  /// availability monitor has its own mutex. Recursive because an epoch
  /// bump raised while holding it can re-enter pricing on the same thread
  /// (the re-route controller re-prices synchronously).
  mutable std::recursive_mutex state_mu_;

  ExecutionContext* sim_;
  MetaWrapper* meta_wrapper_;
  QccConfig config_;
  CalibrationStore store_;
  ReliabilityTracker reliability_;
  AvailabilityMonitor availability_;
  IiCalibration ii_calibration_;
  LoadBalancer load_balancer_;
  CircuitBreakerBank breakers_;
  WhatIfSimulator whatif_;
  /// The attached integrator's prepared-plan cache (nullptr while
  /// detached). QCC bumps its routing epoch on calibration drift,
  /// availability transitions, and breaker state changes.
  PlanCache* plan_cache_ = nullptr;
  /// Last breaker state emitted per server, so SampleServerState raises
  /// one transition event per change even when the open->half-open move
  /// happens lazily on a time check.
  std::map<std::string, BreakerState> last_breaker_;
};

}  // namespace fedcal
