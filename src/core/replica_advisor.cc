#include "core/replica_advisor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/macros.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace fedcal {

std::string ReplicaAdvisor::NicknameOf(
    const std::string& server_id, const std::string& remote_table) const {
  for (const auto& nickname : catalog_->nicknames()) {
    auto entry = catalog_->Lookup(nickname);
    if (!entry.ok()) continue;
    for (const auto& loc : (*entry)->locations) {
      if (loc.server_id == server_id && loc.remote_table == remote_table) {
        return nickname;
      }
    }
  }
  return "";
}

std::vector<ReplicaRecommendation> ReplicaAdvisor::Analyze() const {
  // Join the runtime log (observed seconds per (server, signature)) with
  // the compile log (statement text per (server, signature)) and charge
  // each observation to every nickname its statement touches.
  std::map<std::pair<std::string, size_t>, std::string> statements;
  for (const auto& rec : meta_wrapper_->compile_log()) {
    statements[{rec.server_id, rec.signature}] = rec.statement;
  }

  std::map<std::string, double> nickname_workload;
  std::map<std::string, double> server_workload;
  for (const auto& rec : meta_wrapper_->runtime_log()) {
    if (rec.cost.failed) continue;
    server_workload[rec.server_id] += rec.cost.observed_seconds;
    auto it = statements.find({rec.server_id, rec.signature});
    if (it == statements.end()) continue;
    auto stmt = ParseSelect(it->second);
    if (!stmt.ok()) continue;
    std::set<std::string> charged;
    for (const auto& tr : stmt->from) {
      const std::string nickname = NicknameOf(rec.server_id, tr.table);
      if (!nickname.empty() && charged.insert(nickname).second) {
        nickname_workload[nickname] += rec.cost.observed_seconds;
      }
    }
  }

  // Rank nicknames hottest-first.
  std::vector<std::pair<std::string, double>> hot(nickname_workload.begin(),
                                                  nickname_workload.end());
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::vector<ReplicaRecommendation> recommendations;
  for (const auto& [nickname, workload] : hot) {
    if (workload < config_.min_workload_seconds) break;
    if (recommendations.size() >= config_.max_recommendations) break;
    auto entry = catalog_->Lookup(nickname);
    if (!entry.ok() || (*entry)->locations.empty()) continue;

    std::set<std::string> hosting;
    for (const auto& loc : (*entry)->locations) {
      hosting.insert(loc.server_id);
    }
    // Least-loaded known server not yet hosting the nickname.
    std::string target;
    double target_load = 0.0;
    for (const auto& server_id : meta_wrapper_->server_ids()) {
      if (hosting.count(server_id)) continue;
      const double load = server_workload.count(server_id)
                              ? server_workload.at(server_id)
                              : 0.0;
      if (target.empty() || load < target_load) {
        target = server_id;
        target_load = load;
      }
    }
    if (target.empty()) continue;  // already replicated everywhere

    ReplicaRecommendation rec;
    rec.nickname = nickname;
    rec.source_server = (*entry)->locations.front().server_id;
    rec.target_server = target;
    rec.nickname_workload_seconds = workload;
    rec.target_workload_seconds = target_load;
    rec.rationale = StringFormat(
        "nickname '%s' carried %.3fs of observed fragment time; server "
        "'%s' carried only %.3fs and hosts no replica",
        nickname.c_str(), workload, target.c_str(), target_load);
    recommendations.push_back(std::move(rec));
  }

  // Leave the placement analysis in the flight recorder so a later
  // `\explain` reader can see what the advisor believed and why.
  obs::Telemetry& tel = *meta_wrapper_->telemetry();
  const ExecutionContext* sim = tel.tracer.sim();
  const SimTime now = sim != nullptr ? sim->Now() : 0.0;
  for (const auto& rec : recommendations) {
    tel.recorder.AddNote(now, "replica_advisor",
                         "replicate " + rec.nickname + " from " +
                             rec.source_server + " to " + rec.target_server +
                             ": " + rec.rationale);
  }
  return recommendations;
}

Status ReplicaAdvisor::Apply(const ReplicaRecommendation& rec) {
  FEDCAL_ASSIGN_OR_RETURN(const NicknameEntry* entry,
                          catalog_->Lookup(rec.nickname));
  const NicknameLocation* source = nullptr;
  for (const auto& loc : entry->locations) {
    if (loc.server_id == rec.source_server) {
      source = &loc;
      break;
    }
  }
  if (source == nullptr) {
    return Status::NotFound("recommendation's source server " +
                            rec.source_server + " no longer hosts " +
                            rec.nickname);
  }
  FEDCAL_ASSIGN_OR_RETURN(RelationalWrapper * source_wrapper,
                          meta_wrapper_->GetWrapper(rec.source_server));
  FEDCAL_ASSIGN_OR_RETURN(RelationalWrapper * target_wrapper,
                          meta_wrapper_->GetWrapper(rec.target_server));
  FEDCAL_ASSIGN_OR_RETURN(
      TablePtr table,
      source_wrapper->server()->GetTable(source->remote_table));

  // Remote name on the target: keep the source's name unless it clashes.
  std::string remote_name = source->remote_table;
  if (target_wrapper->server()->HasTable(remote_name)) {
    remote_name += "_replica";
    if (target_wrapper->server()->HasTable(remote_name)) {
      return Status::AlreadyExists("table " + remote_name + " on " +
                                   rec.target_server);
    }
  }
  FEDCAL_RETURN_NOT_OK(
      target_wrapper->server()->AddTable(table->CloneAs(remote_name)));
  return catalog_->AddLocation(rec.nickname, rec.target_server, remote_name);
}

}  // namespace fedcal
