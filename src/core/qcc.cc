#include "core/qcc.h"

#include <cmath>
#include <cstdio>
#include <set>

namespace fedcal {

namespace {

const char* LevelName(LoadBalanceConfig::Level level) {
  switch (level) {
    case LoadBalanceConfig::Level::kNone: return "none";
    case LoadBalanceConfig::Level::kFragment: return "fragment";
    case LoadBalanceConfig::Level::kGlobal: return "global";
  }
  return "unknown";
}

double BreakerStateValue(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return 0.0;
    case BreakerState::kHalfOpen: return 1.0;
    case BreakerState::kOpen: return 2.0;
  }
  return 0.0;
}

std::string JoinServerSet(const std::vector<std::string>& servers) {
  std::string out;
  for (const auto& s : servers) {
    if (!out.empty()) out += "+";
    out += s;
  }
  return out;
}

// The pricing view pinned by BeginPricing for the current thread.
// Owner-tagged so interleaved pricing by two calibrator instances on one
// thread (tests build several federations) cannot cross wires.
thread_local const QueryCostCalibrator* tls_pricing_owner = nullptr;
thread_local std::shared_ptr<const QccPricingView> tls_pricing_view;

}  // namespace

QueryCostCalibrator::QueryCostCalibrator(ExecutionContext* sim,
                                         MetaWrapper* meta_wrapper,
                                         QccConfig config)
    : sim_(sim),
      meta_wrapper_(meta_wrapper),
      config_(config),
      store_(config.calibration),
      reliability_(config.reliability),
      availability_(sim, meta_wrapper, &store_, config.availability,
                    config.cycle),
      load_balancer_(sim, config.load_balance),
      breakers_(config.breaker),
      whatif_(nullptr, meta_wrapper) {}

void QueryCostCalibrator::AttachTo(Integrator* integrator) {
  meta_wrapper_->SetCalibrator(this);
  integrator->SetPlanSelector(this);
  plan_cache_ = &integrator->plan_cache();
  // Any real up/down transition — daemon probe or log-based — changes
  // which servers are priced at infinity, so cached pricing is stale.
  // The same transition is the availability event the health engine's
  // §3.3 alerting keys off.
  availability_.SetTransitionHook(
      [this](const std::string& server_id, bool down) {
        meta_wrapper_->telemetry()->events.Emit(
            down ? obs::EventType::kServerDown : obs::EventType::kServerUp,
            down ? obs::EventSeverity::kError : obs::EventSeverity::kInfo,
            server_id, /*query_id=*/0,
            down ? "availability daemons marked " + server_id + " down"
                 : "availability daemons marked " + server_id + " up");
        BumpRoutingEpoch((down ? "server-down:" : "server-up:") + server_id);
      });
  whatif_ = WhatIfSimulator(integrator->catalog(), meta_wrapper_,
                            IiProfile{integrator->config().configured_speed});
  for (const auto& server_id : meta_wrapper_->server_ids()) {
    availability_.Watch(server_id);
  }
  if (config_.enable_availability_daemon) {
    availability_.Start();
  }
}

void QueryCostCalibrator::Detach(Integrator* integrator) {
  availability_.Stop();
  availability_.SetTransitionHook(nullptr);
  plan_cache_ = nullptr;
  meta_wrapper_->SetCalibrator(nullptr);
  integrator->SetPlanSelector(nullptr);
}

void QueryCostCalibrator::BumpRoutingEpoch(const std::string& reason) {
  if (plan_cache_ == nullptr) return;
  plan_cache_->BumpEpoch(reason);
  obs::MetricsRegistry& metrics = meta_wrapper_->telemetry()->metrics;
  metrics.counter("plan_cache.epoch_bumps").Add();
  metrics.gauge("plan_cache.epoch")
      .Set(static_cast<double>(plan_cache_->epoch()));
}

std::shared_ptr<const QccPricingView> QueryCostCalibrator::BuildPricingView() {
  auto view = std::make_shared<QccPricingView>();
  view->calibration = store_.Snapshot();
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  const SimTime now = sim_->Now();
  for (const std::string& sid : meta_wrapper_->server_ids()) {
    QccPricingView::ServerAux aux;
    aux.down = availability_.IsDown(sid);
    aux.breaker_open =
        config_.enable_circuit_breaker && breakers_.IsOpen(sid, now);
    aux.reliability_multiplier = reliability_.CostMultiplier(sid);
    view->aux.emplace(sid, aux);
  }
  view->ii_factor = ii_calibration_.Factor();
  return view;
}

void QueryCostCalibrator::BeginPricing() {
  tls_pricing_owner = this;
  tls_pricing_view = BuildPricingView();
}

void QueryCostCalibrator::EndPricing() {
  if (tls_pricing_owner == this) {
    tls_pricing_owner = nullptr;
    tls_pricing_view.reset();
  }
}

double QueryCostCalibrator::CalibrateFragmentCost(
    const std::string& server_id, size_t signature,
    double estimated_seconds) {
  // Inside a Begin/EndPricing bracket: price against the pinned immutable
  // view, lock-free, so every candidate of one query sees one consistent
  // state no matter what other threads record meanwhile.
  if (tls_pricing_owner == this && tls_pricing_view != nullptr) {
    const QccPricingView& view = *tls_pricing_view;
    auto it = view.aux.find(server_id);
    if (it != view.aux.end() &&
        (it->second.down || it->second.breaker_open)) {
      return kInfiniteCost;
    }
    if (!config_.enable_calibration) return estimated_seconds;
    double calibrated =
        view.calibration->Calibrate(server_id, signature, estimated_seconds);
    if (config_.enable_reliability && it != view.aux.end()) {
      calibrated *= it->second.reliability_multiplier;
    }
    return calibrated;
  }

  // Live path (callers outside the route phase: probes, tools).
  // A down server is priced at infinity so the optimizer never routes to
  // it (§3.3); the daemons restore it once it answers probes again.
  if (availability_.IsDown(server_id)) return kInfiniteCost;
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  // An open breaker is the fail-slow analog: the server answers probes
  // but keeps erroring or timing out, so it is priced out until the
  // half-open probation closes it again.
  if (config_.enable_circuit_breaker &&
      breakers_.IsOpen(server_id, sim_->Now())) {
    return kInfiniteCost;
  }
  if (!config_.enable_calibration) return estimated_seconds;
  double calibrated = store_.Calibrate(server_id, signature,
                                       estimated_seconds);
  if (config_.enable_reliability) {
    calibrated *= reliability_.CostMultiplier(server_id);
  }
  return calibrated;
}

double QueryCostCalibrator::CalibrateIntegrationCost(
    double estimated_seconds) {
  if (!config_.enable_calibration) return estimated_seconds;
  if (tls_pricing_owner == this && tls_pricing_view != nullptr) {
    return estimated_seconds * tls_pricing_view->ii_factor;
  }
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  return ii_calibration_.Calibrate(estimated_seconds);
}

void QueryCostCalibrator::RecordEstimate(const std::string& server_id,
                                         size_t signature,
                                         double estimated_seconds) {
  // Estimates alone carry no calibration signal; pairing happens in
  // RecordFragmentObservation. Kept as a hook for diagnostics.
  (void)server_id;
  (void)signature;
  (void)estimated_seconds;
}

void QueryCostCalibrator::RecordFragmentObservation(
    const std::string& server_id, size_t signature, double estimated_seconds,
    double observed_seconds) {
  RecordFragmentObservation(server_id, signature, estimated_seconds,
                            observed_seconds, /*cardinality_suspect=*/false);
}

void QueryCostCalibrator::RecordFragmentObservation(
    const std::string& server_id, size_t signature, double estimated_seconds,
    double observed_seconds, bool cardinality_suspect) {
  obs::MetricsRegistry& metrics = meta_wrapper_->telemetry()->metrics;
  metrics.counter("qcc.observations").Add();
  if (cardinality_suspect) {
    // The fragment's operator profile showed the optimizer's cardinality
    // estimate was wrong, so the excess time is the optimizer's fault, not
    // the server's. Absorbing it into the per-server calibration factor
    // would mis-rank every other plan on this server and trip the drift
    // detector for a regime change that never happened — the miss is
    // accounted on the accuracy scoreboard (kEstimateMiss) instead.
    metrics.counter("qcc.observations.cardinality_suspect").Add();
    meta_wrapper_->telemetry()->health.RecordServerLatency(
        server_id, sim_->Now(), estimated_seconds, observed_seconds);
    return;
  }
  store_.Record(server_id, signature, estimated_seconds, observed_seconds);
  if (estimated_seconds > 0.0) {
    metrics.gauge("qcc.last_ratio." + server_id)
        .Set(observed_seconds / estimated_seconds);
  }
  // Flight-recorder time series: the calibration factor after absorbing
  // this observation (the drift detector runs inside Sample), plus the
  // raw observed/estimated ratio that moved it.
  obs::FlightRecorder& recorder = meta_wrapper_->telemetry()->recorder;
  if (recorder.enabled()) {
    const uint64_t drift_before = recorder.total_drift_events();
    recorder.Sample(server_id, obs::ServerMetric::kCalibrationFactor,
                    sim_->Now(), store_.ServerFactor(server_id));
    if (estimated_seconds > 0.0) {
      recorder.Sample(server_id, obs::ServerMetric::kObservedRatio,
                      sim_->Now(), observed_seconds / estimated_seconds);
    }
    const uint64_t drifts = recorder.total_drift_events() - drift_before;
    if (drifts > 0) {
      metrics.counter("recorder.drift_events").Add(drifts);
      metrics.counter("recorder.drift_events." + server_id).Add(drifts);
      const obs::DriftEvent& drift = recorder.drift_events().back();
      char what[96];
      std::snprintf(what, sizeof(what),
                    "calibration factor %.3f -> %.3f (%+.0f%%)",
                    drift.reference, drift.current,
                    (drift.current >= drift.reference ? 1.0 : -1.0) *
                        drift.change_fraction * 100.0);
      meta_wrapper_->telemetry()->events.Emit(
          obs::EventType::kCalibrationDrift, obs::EventSeverity::kWarn,
          server_id, /*query_id=*/0, what);
      // A drift event means the calibration regime moved enough that
      // cached plans may now be mis-ranked: force a re-price.
      BumpRoutingEpoch("calibration-drift:" + server_id);
    }
  }
  meta_wrapper_->telemetry()->health.RecordServerLatency(
      server_id, sim_->Now(), estimated_seconds, observed_seconds);
}

void QueryCostCalibrator::RecordIntegrationObservation(
    double estimated_seconds, double observed_seconds) {
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  ii_calibration_.Record(estimated_seconds, observed_seconds);
}

void QueryCostCalibrator::RecordError(const std::string& server_id,
                                      const Status& error) {
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  obs::MetricsRegistry& metrics = meta_wrapper_->telemetry()->metrics;
  metrics.counter("qcc.errors." + server_id).Add();
  reliability_.RecordError(server_id);
  if (config_.enable_circuit_breaker) {
    const bool was_open = breakers_.IsOpen(server_id, sim_->Now());
    breakers_.RecordFailure(server_id, sim_->Now());
    if (!was_open && breakers_.IsOpen(server_id, sim_->Now())) {
      metrics.counter("qcc.breaker_trips." + server_id).Add();
      BumpRoutingEpoch("breaker-open:" + server_id);
    }
  }
  if (config_.detect_down_from_logs && error.IsUnavailable()) {
    metrics.counter("qcc.down_marked." + server_id).Add();
    availability_.MarkDown(server_id);
  }
  meta_wrapper_->telemetry()->health.RecordServerOutcome(server_id,
                                                         sim_->Now(), false);
  SampleServerState(server_id);
}

void QueryCostCalibrator::RecordSuccess(const std::string& server_id) {
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  reliability_.RecordSuccess(server_id);
  // Availability-daemon probes report through here too, so a half-open
  // breaker accumulates its probation successes without any extra probe
  // machinery.
  if (config_.enable_circuit_breaker) {
    const bool was_open = breakers_.IsOpen(server_id, sim_->Now());
    breakers_.RecordSuccess(server_id, sim_->Now());
    if (was_open && !breakers_.IsOpen(server_id, sim_->Now())) {
      BumpRoutingEpoch("breaker-closed:" + server_id);
    }
  }
  // A success is definitive evidence the server answers: clear a stale
  // down mark right away instead of waiting for the probe loop to get
  // around to it (the daemon's own MarkUp then finds nothing to do).
  availability_.MarkUp(server_id);
  meta_wrapper_->telemetry()->health.RecordServerOutcome(server_id,
                                                         sim_->Now(), true);
  SampleServerState(server_id);
}

size_t QueryCostCalibrator::SelectPlan(
    const QueryContext& ctx,
    const std::vector<GlobalPlanOption>& options) {
  // Covers the load balancer's rotation counters and the server-state
  // reads inside RecordDecision.
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  const PlanSelection selection =
      load_balancer_.SelectPlanExplained(ctx, options);
  obs::FlightRecorder& recorder = meta_wrapper_->telemetry()->recorder;
  if (ctx.cache_hit && recorder.enabled()) {
    recorder.AddNote(sim_->Now(), "plan_cache",
                     "query " + std::to_string(ctx.query_id) +
                         " served from prepared-plan cache (epoch " +
                         std::to_string(ctx.routing_epoch) + ")");
  }
  RecordDecision(ctx, options, selection);
  return selection.chosen;
}

void QueryCostCalibrator::RecordDecision(
    const QueryContext& ctx,
    const std::vector<GlobalPlanOption>& options,
    const PlanSelection& selection) {
  obs::FlightRecorder& recorder = meta_wrapper_->telemetry()->recorder;
  if (!recorder.enabled() || options.empty()) return;

  obs::DecisionRecord record;
  record.query_id = ctx.query_id;
  record.sql = ctx.sql;
  record.at = sim_->Now();
  record.cache_hit = ctx.cache_hit;
  record.routing_epoch = ctx.routing_epoch;
  record.chosen_index = selection.chosen;
  record.balance_level = LevelName(selection.level);
  record.cost_tolerance = config_.load_balance.cost_tolerance;
  record.rotation_group = selection.group;
  record.rotation_counter = selection.rotation_counter;
  record.workload_threshold_met = selection.workload_threshold_met;

  std::set<size_t> in_group(selection.group.begin(), selection.group.end());
  // Options arrive sorted cheapest first, so options[0] anchors the §4
  // clustering tolerance.
  const double tolerance_limit =
      options[0].total_calibrated_seconds *
      (1.0 + config_.load_balance.cost_tolerance);

  record.candidates.reserve(options.size());
  for (size_t i = 0; i < options.size(); ++i) {
    const GlobalPlanOption& opt = options[i];
    obs::CandidatePlanRecord cand;
    cand.option_index = i;
    cand.server_set = JoinServerSet(opt.server_set);
    cand.total_calibrated_seconds = opt.total_calibrated_seconds;
    cand.total_raw_seconds = opt.total_raw_seconds;
    cand.chosen = (i == selection.chosen);
    cand.in_rotation_group = in_group.count(i) > 0;
    for (const FragmentOption& fc : opt.fragment_choices) {
      cand.fragments.push_back(obs::FragmentCostRecord{
          fc.wrapper_plan.server_id, fc.wrapper_plan.signature,
          fc.cost.raw_estimated_seconds, fc.cost.calibrated_seconds});
    }
    if (!cand.chosen) {
      if (!std::isfinite(opt.total_calibrated_seconds)) {
        cand.rejection_reason =
            "priced at infinity (server down or breaker open)";
      } else if (selection.level == LoadBalanceConfig::Level::kNone) {
        cand.rejection_reason = "load balancing off: cheapest plan taken";
      } else if (!selection.workload_threshold_met) {
        cand.rejection_reason =
            "rotation skipped (below workload threshold): cheapest taken";
      } else if (cand.in_rotation_group) {
        cand.rejection_reason = "rotation alternate: round-robin picked #" +
                                std::to_string(selection.chosen);
      } else if (opt.total_calibrated_seconds > tolerance_limit) {
        cand.rejection_reason =
            "calibrated cost exceeds +" +
            std::to_string(
                static_cast<int>(config_.load_balance.cost_tolerance * 100)) +
            "% tolerance of cheapest";
      } else if (selection.level == LoadBalanceConfig::Level::kGlobal) {
        cand.rejection_reason =
            "dominated: cheaper plan exists on the same server set";
      } else {
        cand.rejection_reason =
            "not exchangeable with the cheapest plan (shape or cost)";
      }
    }
    record.candidates.push_back(std::move(cand));
  }

  // The calibration/reliability/availability/breaker state consulted for
  // every server any candidate would touch.
  std::set<std::string> servers;
  for (const auto& opt : options) {
    servers.insert(opt.server_set.begin(), opt.server_set.end());
  }
  for (const std::string& sid : servers) {
    obs::ServerStateRecord state;
    state.server_id = sid;
    state.calibration_factor = store_.ServerFactor(sid);
    state.calibration_samples = store_.ServerSamples(sid);
    state.reliability_multiplier = reliability_.CostMultiplier(sid);
    state.available = !availability_.IsDown(sid);
    state.breaker_state =
        BreakerStateName(breakers_.State(sid, sim_->Now()));
    record.server_states.push_back(std::move(state));
  }

  recorder.Record(std::move(record));
  meta_wrapper_->telemetry()->metrics.counter("recorder.decisions").Add();
}

void QueryCostCalibrator::SampleServerState(const std::string& server_id) {
  std::lock_guard<std::recursive_mutex> lock(state_mu_);
  const SimTime now = sim_->Now();
  const BreakerState breaker = breakers_.State(server_id, now);
  // Breaker transitions become events here — the single observation
  // point that sees all three moves, including the lazy open->half-open
  // flip that only materializes on a time check.
  auto it = last_breaker_.find(server_id);
  const BreakerState previous =
      it == last_breaker_.end() ? BreakerState::kClosed : it->second;
  if (breaker != previous) {
    obs::EventType type = obs::EventType::kBreakerClosed;
    obs::EventSeverity severity = obs::EventSeverity::kInfo;
    if (breaker == BreakerState::kOpen) {
      type = obs::EventType::kBreakerOpen;
      severity = obs::EventSeverity::kError;
    } else if (breaker == BreakerState::kHalfOpen) {
      type = obs::EventType::kBreakerHalfOpen;
    }
    meta_wrapper_->telemetry()->events.Emit(
        type, severity, server_id, /*query_id=*/0,
        std::string("circuit breaker ") + BreakerStateName(previous) +
            " -> " + BreakerStateName(breaker));
  }
  last_breaker_[server_id] = breaker;

  obs::FlightRecorder& recorder = meta_wrapper_->telemetry()->recorder;
  if (!recorder.enabled()) return;
  recorder.Sample(server_id, obs::ServerMetric::kReliabilityMultiplier, now,
                  reliability_.CostMultiplier(server_id));
  recorder.Sample(server_id, obs::ServerMetric::kAvailability, now,
                  availability_.IsDown(server_id) ? 0.0 : 1.0);
  recorder.Sample(server_id, obs::ServerMetric::kBreakerState, now,
                  BreakerStateValue(breaker));
}

}  // namespace fedcal
