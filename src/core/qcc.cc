#include "core/qcc.h"

namespace fedcal {

QueryCostCalibrator::QueryCostCalibrator(Simulator* sim,
                                         MetaWrapper* meta_wrapper,
                                         QccConfig config)
    : sim_(sim),
      meta_wrapper_(meta_wrapper),
      config_(config),
      store_(config.calibration),
      reliability_(config.reliability),
      availability_(sim, meta_wrapper, &store_, config.availability,
                    config.cycle),
      load_balancer_(sim, config.load_balance),
      breakers_(config.breaker),
      whatif_(nullptr, meta_wrapper) {}

void QueryCostCalibrator::AttachTo(Integrator* integrator) {
  meta_wrapper_->SetCalibrator(this);
  integrator->SetPlanSelector(this);
  whatif_ = WhatIfSimulator(integrator->catalog(), meta_wrapper_,
                            IiProfile{integrator->config().configured_speed});
  for (const auto& server_id : meta_wrapper_->server_ids()) {
    availability_.Watch(server_id);
  }
  if (config_.enable_availability_daemon) {
    availability_.Start();
  }
}

void QueryCostCalibrator::Detach(Integrator* integrator) {
  availability_.Stop();
  meta_wrapper_->SetCalibrator(nullptr);
  integrator->SetPlanSelector(nullptr);
}

double QueryCostCalibrator::CalibrateFragmentCost(
    const std::string& server_id, size_t signature,
    double estimated_seconds) {
  // A down server is priced at infinity so the optimizer never routes to
  // it (§3.3); the daemons restore it once it answers probes again.
  if (availability_.IsDown(server_id)) return kInfiniteCost;
  // An open breaker is the fail-slow analog: the server answers probes
  // but keeps erroring or timing out, so it is priced out until the
  // half-open probation closes it again.
  if (config_.enable_circuit_breaker &&
      breakers_.IsOpen(server_id, sim_->Now())) {
    return kInfiniteCost;
  }
  if (!config_.enable_calibration) return estimated_seconds;
  double calibrated = store_.Calibrate(server_id, signature,
                                       estimated_seconds);
  if (config_.enable_reliability) {
    calibrated *= reliability_.CostMultiplier(server_id);
  }
  return calibrated;
}

double QueryCostCalibrator::CalibrateIntegrationCost(
    double estimated_seconds) {
  if (!config_.enable_calibration) return estimated_seconds;
  return ii_calibration_.Calibrate(estimated_seconds);
}

void QueryCostCalibrator::RecordEstimate(const std::string& server_id,
                                         size_t signature,
                                         double estimated_seconds) {
  // Estimates alone carry no calibration signal; pairing happens in
  // RecordFragmentObservation. Kept as a hook for diagnostics.
  (void)server_id;
  (void)signature;
  (void)estimated_seconds;
}

void QueryCostCalibrator::RecordFragmentObservation(
    const std::string& server_id, size_t signature, double estimated_seconds,
    double observed_seconds) {
  store_.Record(server_id, signature, estimated_seconds, observed_seconds);
  obs::MetricsRegistry& metrics = meta_wrapper_->telemetry()->metrics;
  metrics.counter("qcc.observations").Add();
  if (estimated_seconds > 0.0) {
    metrics.gauge("qcc.last_ratio." + server_id)
        .Set(observed_seconds / estimated_seconds);
  }
}

void QueryCostCalibrator::RecordIntegrationObservation(
    double estimated_seconds, double observed_seconds) {
  ii_calibration_.Record(estimated_seconds, observed_seconds);
}

void QueryCostCalibrator::RecordError(const std::string& server_id,
                                      const Status& error) {
  obs::MetricsRegistry& metrics = meta_wrapper_->telemetry()->metrics;
  metrics.counter("qcc.errors." + server_id).Add();
  reliability_.RecordError(server_id);
  if (config_.enable_circuit_breaker) {
    const bool was_open = breakers_.IsOpen(server_id, sim_->Now());
    breakers_.RecordFailure(server_id, sim_->Now());
    if (!was_open && breakers_.IsOpen(server_id, sim_->Now())) {
      metrics.counter("qcc.breaker_trips." + server_id).Add();
    }
  }
  if (config_.detect_down_from_logs && error.IsUnavailable()) {
    metrics.counter("qcc.down_marked." + server_id).Add();
    availability_.MarkDown(server_id);
  }
}

void QueryCostCalibrator::RecordSuccess(const std::string& server_id) {
  reliability_.RecordSuccess(server_id);
  // Availability-daemon probes report through here too, so a half-open
  // breaker accumulates its probation successes without any extra probe
  // machinery.
  if (config_.enable_circuit_breaker) {
    breakers_.RecordSuccess(server_id, sim_->Now());
  }
}

size_t QueryCostCalibrator::SelectPlan(
    uint64_t query_id, const std::string& sql,
    const std::vector<GlobalPlanOption>& options) {
  return load_balancer_.SelectPlan(query_id, sql, options);
}

}  // namespace fedcal
