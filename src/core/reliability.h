#pragma once

#include <map>
#include <string>

#include "common/running_stats.h"

namespace fedcal {

/// \brief Tuning for the reliability factor (§3.3).
struct ReliabilityConfig {
  /// Outcomes remembered per server.
  size_t window = 128;
  /// Exponent shaping how hard unreliability is punished: the cost
  /// multiplier is (1 / success_rate)^penalty_exponent.
  double penalty_exponent = 2.0;
  /// Laplace smoothing so one early error does not zero a server out.
  double smoothing = 1.0;
  /// Upper bound on the multiplier for servers that still answer
  /// sometimes (full unavailability is handled by AvailabilityMonitor).
  double max_multiplier = 50.0;
};

/// \brief Tracks per-server error rates from the MW/patroller logs and
/// turns them into a cost multiplier, so the optimizer prefers not only
/// fast but also dependable sources (§3.3).
class ReliabilityTracker {
 public:
  explicit ReliabilityTracker(ReliabilityConfig config = {})
      : config_(config) {}

  void RecordSuccess(const std::string& server_id);
  void RecordError(const std::string& server_id);

  /// Smoothed success rate in (0, 1].
  double SuccessRate(const std::string& server_id) const;

  /// Multiplier >= 1 applied to calibrated costs.
  double CostMultiplier(const std::string& server_id) const;

  size_t Outcomes(const std::string& server_id) const;
  void Forget(const std::string& server_id);
  void Clear() { windows_.clear(); }

  const ReliabilityConfig& config() const { return config_; }

 private:
  ReliabilityConfig config_;
  // Window of 1.0 (success) / 0.0 (error) outcomes per server.
  std::map<std::string, SlidingWindow> windows_;
};

}  // namespace fedcal
