#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/clock.h"
#include "obs/metrics.h"

namespace fedcal {

/// \brief Serving-runtime tuning.
struct ServingConfig {
  /// Client worker threads in the pool (closed-loop query streams).
  int workers = 1;
  /// Wall seconds per virtual second of timer gap. 0 fires timers as fast
  /// as possible (differential tests); ~5e-3 makes a 1-virtual-second
  /// fragment occupy ~5ms of wall clock, so concurrent in-flight queries
  /// genuinely overlap their waits (the throughput benches use this).
  double time_scale = 0.0;
};

/// \brief The wall-clock ExecutionContext: one timer/dispatcher thread
/// draining a (virtual-time, seq)-ordered event heap, plus a pool of
/// client worker threads for closed-loop query submission.
///
/// **Clock.** The serving clock is *virtual*, exactly like the
/// simulator's: it advances only when an event fires, to that event's due
/// time. `time_scale` stretches the gaps onto the wall clock (the
/// dispatcher sleeps between events) but never changes a timestamp. This
/// is what makes a single-worker serving run reproduce the simulator's
/// observed costs — and therefore its calibration factors and routing
/// decisions — bit for bit.
///
/// **Threading model.** All event callbacks run on the dispatcher thread
/// under the dispatch lock; `RunExclusive` lets any other thread join
/// that mutual exclusion for the scheduling-side of query execution.
/// Everything the engine mutates from event callbacks (attempts,
/// tickets, server queues, links) is therefore dispatcher-owned and needs
/// no locks of its own. The concurrent surfaces — plan cache, QCC
/// calibration state, telemetry spine, logging — carry their own
/// synchronization so `Prepare`/`Route` on worker threads never take the
/// dispatch lock (plan selection is not serialized).
class ServingRuntime final : public ExecutionContext {
 public:
  explicit ServingRuntime(ServingConfig config = {});
  ~ServingRuntime() override;

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  // -- ExecutionContext -------------------------------------------------------

  SimTime Now() const override { return vnow_.load(std::memory_order_acquire); }
  EventId ScheduleAt(SimTime when, Callback cb) override;
  bool Cancel(EventId id) override;
  ExecMode mode() const override { return ExecMode::kServing; }
  int worker_count() const override { return config_.workers; }
  void RunExclusive(const std::function<void()>& fn) override;
  void AwaitCondition(const std::function<bool()>& pred) override;

  // -- Worker pool ------------------------------------------------------------

  /// Runs `job` on one of the pool's worker threads. Jobs may block (the
  /// closed-loop drivers wait for each query's completion callback).
  void Submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void WaitIdle();

  /// Stops the dispatcher and the pool. Pending timers are dropped;
  /// queued jobs are drained first. Called by the destructor.
  void Shutdown();

  size_t fired_events() const { return fired_.load(std::memory_order_relaxed); }
  const ServingConfig& config() const { return config_; }

  /// Routes scheduler telemetry into `registry` under `sched.*` names:
  /// dispatch-lag / exclusion-wait histograms, event-heap depth gauge,
  /// per-worker busy/idle gauges. nullptr disables (the default — a bare
  /// runtime records nothing). Metric references are resolved once here;
  /// the hot paths then cost one acquire load plus the metric update.
  /// Call at most once, before the workload starts (publish is atomic,
  /// but repeated calls would leak the previous resolution).
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Per-metric references resolved once at set_metrics time, so event
  /// dispatch never does a name lookup.
  struct SchedMetrics {
    obs::LatencyHistogram* dispatch_lag = nullptr;
    obs::LatencyHistogram* exclusive_wait = nullptr;
    obs::LatencyHistogram* await_wait = nullptr;
    obs::Gauge* heap_depth = nullptr;
    obs::Counter* events_fired = nullptr;
    obs::Counter* jobs_completed = nullptr;
    obs::Gauge* workers_busy_s = nullptr;
    obs::Gauge* workers_idle_s = nullptr;
    /// Indexed by worker: (busy_s, idle_s) gauges.
    std::vector<std::pair<obs::Gauge*, obs::Gauge*>> per_worker;
  };

  void DispatchLoop();
  void WorkerLoop(int index);
  /// Runs `cb` as the event at virtual time `when`; the caller holds the
  /// dispatch lock.
  void RunEvent(SimTime when, const Callback& cb);

  SchedMetrics* sched() const {
    return sched_live_.load(std::memory_order_acquire);
  }

  ServingConfig config_;

  std::unique_ptr<SchedMetrics> sched_metrics_;
  std::atomic<SchedMetrics*> sched_live_{nullptr};

  // Virtual clock: high-water mark of started events.
  std::atomic<double> vnow_{0.0};
  std::atomic<size_t> fired_{0};

  // Timer heap (dispatcher pops, any thread pushes/cancels).
  mutable std::mutex heap_mutex_;
  std::condition_variable heap_cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;
  uint64_t next_seq_ = 0;
  std::atomic<uint64_t> next_id_{1};
  bool stop_ = false;

  // Dispatch lock: held while any event callback or exclusive section
  // runs. Reentrancy is tracked per-thread (tls owner).
  std::mutex dispatch_mutex_;

  // Event-progress signal for AwaitCondition.
  std::mutex progress_mutex_;
  std::condition_variable progress_cv_;

  // Worker pool.
  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> jobs_;
  size_t active_jobs_ = 0;
  bool pool_stop_ = false;

  std::thread dispatcher_;
  std::vector<std::thread> pool_;
};

}  // namespace fedcal
