#include "storage/value.h"

#include <cmath>
#include <functional>
#include <vector>

#include "common/string_util.h"

namespace fedcal {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const bool ln = is_null();
  const bool rn = other.is_null();
  if (ln || rn) {
    if (ln && rn) return 0;
    return ln ? -1 : 1;
  }
  if (is_numeric() && other.is_numeric()) {
    if (is_int64() && other.is_int64()) {
      const int64_t a = AsInt64();
      const int64_t b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = AsDouble();
    const double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (is_string() && other.is_string()) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Mixed string/numeric: deterministic but meaningless ordering.
  const size_t li = v_.index();
  const size_t ri = other.v_.index();
  return li < ri ? -1 : (li > ri ? 1 : 0);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) return StringFormat("%g", AsDouble());
  return "'" + AsString() + "'";
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ull;
  if (is_numeric()) {
    // Hash int-valued doubles identically to the equivalent int64 so that
    // cross-type equality implies equal hashes.
    const double d = AsDouble();
    if (is_int64() ||
        (std::floor(d) == d && std::abs(d) < 9.0e18)) {
      return std::hash<int64_t>{}(static_cast<int64_t>(d));
    }
    return std::hash<double>{}(d);
  }
  return std::hash<std::string>{}(AsString());
}

size_t Value::ByteSize() const {
  if (is_null()) return 1;
  if (is_int64() || is_double()) return 8;
  return AsString().size() + 8;
}

size_t HashRow(const Row& row) {
  size_t h = 0x51ed270b0a1f2c3dull;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace fedcal
