#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "storage/value.h"

namespace fedcal {

/// \brief One column of values in columnar layout.
///
/// Values live in a typed vector (int64/double/string) with an optional
/// null bitmap that is allocated only when the first null arrives — the
/// null-free fast path is a plain contiguous array. A column whose cells
/// mix numeric representations (e.g. an int64 Value stored in a DOUBLE
/// column, which the row engine's Value variant permits) demotes itself to
/// a `kMixed` vector<Value> so that round-tripping through the columnar
/// engine preserves every cell's exact variant — the differential oracle
/// compares representations, not just numeric equality.
class ColumnData {
 public:
  enum class Kind { kInt64, kDouble, kString, kMixed };

  explicit ColumnData(Kind k) : kind_(k) {}

  explicit ColumnData(DataType declared) {
    switch (declared) {
      case DataType::kInt64:
        kind_ = Kind::kInt64;
        break;
      case DataType::kDouble:
        kind_ = Kind::kDouble;
        break;
      case DataType::kString:
        kind_ = Kind::kString;
        break;
    }
  }

  Kind kind() const { return kind_; }
  size_t size() const { return size_; }
  bool has_nulls() const { return !nulls_.empty(); }
  bool IsNull(size_t i) const {
    if (kind_ == Kind::kMixed) return vals_[i].is_null();
    return !nulls_.empty() && nulls_[i] != 0;
  }

  /// Raw typed storage (valid for the matching kind only). Cells that are
  /// null hold a default value; consult the null bitmap.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return dbls_.data(); }
  const std::vector<std::string>& strings() const { return strs_; }
  const std::vector<Value>& mixed() const { return vals_; }
  const uint8_t* nulls() const { return nulls_.data(); }

  void Reserve(size_t n);

  /// Appends one cell, demoting to kMixed if the value's variant does not
  /// match this column's typed representation.
  void AppendValue(const Value& v);
  void AppendNull();
  /// Typed appends for engine kernels (column must be of matching kind and
  /// must not have been demoted).
  void AppendInt(int64_t v) {
    ints_.push_back(v);
    if (!nulls_.empty()) nulls_.push_back(0);
    ++size_;
  }
  void AppendDouble(double v) {
    dbls_.push_back(v);
    if (!nulls_.empty()) nulls_.push_back(0);
    ++size_;
  }
  void AppendString(std::string v) {
    strs_.push_back(std::move(v));
    if (!nulls_.empty()) nulls_.push_back(0);
    ++size_;
  }
  /// Appends cell `i` of `src` (any kinds; preserves exact variant).
  void AppendFrom(const ColumnData& src, size_t i);

  /// Cell `i` as a row-engine Value (exact variant round-trip).
  Value GetValue(size_t i) const;

  /// Byte accounting identical to Value::ByteSize so columnar tables
  /// report the same byte_size (and thus shipping costs) as row tables.
  size_t CellBytes(size_t i) const;

 private:
  void Demote();

  Kind kind_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> dbls_;
  std::vector<std::string> strs_;
  std::vector<Value> vals_;     ///< kMixed only
  std::vector<uint8_t> nulls_;  ///< empty = no nulls yet (fast path)
};

using ColumnPtr = std::shared_ptr<ColumnData>;

/// \brief A view of one column starting at `offset`: the unit of zero-copy
/// sharing. Slicing and column pass-through adjust the offset instead of
/// copying cells.
struct ColumnSlice {
  ColumnPtr col;
  size_t offset = 0;

  bool IsNull(size_t i) const { return col->IsNull(offset + i); }
  Value ValueAt(size_t i) const { return col->GetValue(offset + i); }
};

/// \brief A batch of rows in columnar layout: one column slice per schema
/// column, each covering `length` rows. Offsets are per column, so a
/// projected chunk can mix pass-through slices of its input (zero-copy)
/// with freshly computed columns.
struct ColumnChunk {
  std::vector<ColumnSlice> columns;
  size_t length = 0;

  bool IsNull(size_t col, size_t i) const { return columns[col].IsNull(i); }
  Value ValueAt(size_t col, size_t i) const {
    return columns[col].ValueAt(i);
  }
  /// Zero-copy sub-range [from, from+n) of this chunk.
  ColumnChunk Slice(size_t from, size_t n) const {
    ColumnChunk out;
    out.columns.reserve(columns.size());
    for (const ColumnSlice& c : columns) {
      out.columns.push_back(ColumnSlice{c.col, c.offset + from});
    }
    out.length = n;
    return out;
  }
};

/// \brief An immutable columnar table: a schema plus a list of column
/// chunks whose lengths sum to num_rows.
class ColumnarTable {
 public:
  explicit ColumnarTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t byte_size() const { return byte_size_; }
  const std::vector<ColumnChunk>& chunks() const { return chunks_; }

  /// Appends a chunk, taking ownership of its (possibly shared) columns.
  /// `bytes` is the chunk's payload per the row-engine accounting; pass
  /// SIZE_MAX to have it recomputed cell by cell.
  void AppendChunk(ColumnChunk chunk, size_t bytes = SIZE_MAX);

  /// Appends every chunk of `other` without copying column data — the
  /// zero-copy fragment-merge primitive.
  void AppendTableZeroCopy(const ColumnarTable& other);

  /// Row `r` (global index) as a row-engine Row.
  Row MaterializeRow(size_t r) const;
  /// All rows, in order.
  std::vector<Row> MaterializeRows() const;

 private:
  Schema schema_;
  std::vector<ColumnChunk> chunks_;
  size_t num_rows_ = 0;
  size_t byte_size_ = 0;
};

using ColumnarTablePtr = std::shared_ptr<const ColumnarTable>;

/// Converts a row table into columnar chunks of at most `batch_rows` rows.
ColumnarTablePtr ColumnarFromRows(const Schema& schema,
                                  const std::vector<Row>& rows,
                                  size_t batch_rows);

}  // namespace fedcal
