#pragma once

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace fedcal {

/// \brief CSV options shared by reader and writer.
struct CsvOptions {
  char delimiter = ',';
  /// Reader: does the first line carry column names? Writer: emit one?
  bool header = true;
  /// Cell text treated as NULL (case-sensitive, unquoted only).
  std::string null_token = "";
};

/// \brief Parses CSV text into a table with the given schema.
///
/// Values are coerced per the schema column types (INT / DOUBLE parse,
/// VARCHAR taken verbatim). Double-quoted cells may contain delimiters,
/// newlines and doubled quotes. When `options.header` is set, the first
/// record is validated against the schema's column names.
Result<TablePtr> ReadCsv(const std::string& csv_text,
                         const std::string& table_name, Schema schema,
                         CsvOptions options = {});

/// \brief Reads a CSV file from disk (convenience wrapper over ReadCsv).
Result<TablePtr> ReadCsvFile(const std::string& path,
                             const std::string& table_name, Schema schema,
                             CsvOptions options = {});

/// \brief Serializes a table to CSV text.
std::string WriteCsv(const Table& table, CsvOptions options = {});

/// \brief Writes a table to a CSV file on disk.
Status WriteCsvFile(const Table& table, const std::string& path,
                    CsvOptions options = {});

}  // namespace fedcal
