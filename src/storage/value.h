#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace fedcal {

/// \brief Column data types supported by the storage and execution layers.
enum class DataType { kInt64, kDouble, kString };

const char* DataTypeName(DataType t);

/// \brief A single (nullable) cell value.
///
/// Row-oriented storage: a row is a vector<Value>. Values order and compare
/// within the same type; numeric cross-type comparison (int64 vs double) is
/// supported because the SQL layer allows mixed numeric predicates.
class Value {
 public:
  Value() : v_(Null{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null_() { return Value(); }

  bool is_null() const { return std::holds_alternative<Null>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int64() || is_double(); }

  int64_t AsInt64() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    return is_int64() ? static_cast<double>(std::get<int64_t>(v_))
                      : std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Three-way comparison: -1, 0, +1. Nulls sort first; numeric types
  /// compare by value; comparing string with numeric is an error caught at
  /// bind time, here it falls back to type-index ordering.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// SQL-literal-ish rendering ("NULL", 42, 3.5, 'abc').
  std::string ToString() const;

  /// Hash consistent with operator== for numeric cross-type equality.
  size_t Hash() const;

  /// Approximate in-memory footprint in bytes (used for shipping costs).
  size_t ByteSize() const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  std::variant<Null, int64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

/// Hash of a full row (for hash joins / hash aggregation).
size_t HashRow(const Row& row);

}  // namespace fedcal
