#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace fedcal {

/// \brief A named, typed column.
struct ColumnDef {
  std::string name;
  DataType type;

  bool operator==(const ColumnDef& o) const {
    return name == o.name && type == o.type;
  }
};

/// \brief Ordered list of columns describing a table or an intermediate
/// result.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with the given (case-sensitive) name.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Appends a column; duplicate names are allowed in intermediate schemas
  /// (e.g. join outputs) and disambiguated by position.
  void AddColumn(ColumnDef col) { columns_.push_back(std::move(col)); }

  /// Concatenation of two schemas (join output).
  static Schema Concat(const Schema& left, const Schema& right);

  /// "name:TYPE, name:TYPE, ..." for diagnostics.
  std::string ToString() const;

  bool operator==(const Schema& o) const { return columns_ == o.columns_; }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace fedcal
