#include "storage/schema.h"

#include "common/string_util.h"

namespace fedcal {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<ColumnDef> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const auto& c : columns_) {
    parts.push_back(c.name + ":" + DataTypeName(c.type));
  }
  return Join(parts, ", ");
}

}  // namespace fedcal
