#include "storage/column_chunk.h"

#include <algorithm>

namespace fedcal {

void ColumnData::Reserve(size_t n) {
  switch (kind_) {
    case Kind::kInt64:
      ints_.reserve(n);
      break;
    case Kind::kDouble:
      dbls_.reserve(n);
      break;
    case Kind::kString:
      strs_.reserve(n);
      break;
    case Kind::kMixed:
      vals_.reserve(n);
      break;
  }
}

void ColumnData::Demote() {
  std::vector<Value> vals;
  vals.reserve(size_);
  for (size_t i = 0; i < size_; ++i) vals.push_back(GetValue(i));
  vals_ = std::move(vals);
  ints_.clear();
  ints_.shrink_to_fit();
  dbls_.clear();
  dbls_.shrink_to_fit();
  strs_.clear();
  strs_.shrink_to_fit();
  nulls_.clear();
  nulls_.shrink_to_fit();
  kind_ = Kind::kMixed;
}

void ColumnData::AppendNull() {
  if (kind_ == Kind::kMixed) {
    vals_.push_back(Value::Null_());
    ++size_;
    return;
  }
  if (nulls_.empty()) nulls_.assign(size_, 0);
  nulls_.push_back(1);
  switch (kind_) {
    case Kind::kInt64:
      ints_.push_back(0);
      break;
    case Kind::kDouble:
      dbls_.push_back(0.0);
      break;
    case Kind::kString:
      strs_.emplace_back();
      break;
    case Kind::kMixed:
      break;
  }
  ++size_;
}

void ColumnData::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (kind_) {
    case Kind::kInt64:
      if (v.is_int64()) {
        AppendInt(v.AsInt64());
        return;
      }
      break;
    case Kind::kDouble:
      if (v.is_double()) {
        AppendDouble(v.AsDouble());
        return;
      }
      break;
    case Kind::kString:
      if (v.is_string()) {
        AppendString(v.AsString());
        return;
      }
      break;
    case Kind::kMixed:
      vals_.push_back(v);
      ++size_;
      return;
  }
  // Variant does not match the typed representation (e.g. an int64 cell
  // in a DOUBLE column): fall back to exact-variant storage.
  Demote();
  vals_.push_back(v);
  ++size_;
}

void ColumnData::AppendFrom(const ColumnData& src, size_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  if (kind_ == src.kind_ && kind_ != Kind::kMixed) {
    switch (kind_) {
      case Kind::kInt64:
        AppendInt(src.ints_[i]);
        return;
      case Kind::kDouble:
        AppendDouble(src.dbls_[i]);
        return;
      case Kind::kString:
        AppendString(src.strs_[i]);
        return;
      case Kind::kMixed:
        break;
    }
  }
  AppendValue(src.GetValue(i));
}

Value ColumnData::GetValue(size_t i) const {
  if (kind_ == Kind::kMixed) return vals_[i];
  if (IsNull(i)) return Value::Null_();
  switch (kind_) {
    case Kind::kInt64:
      return Value(ints_[i]);
    case Kind::kDouble:
      return Value(dbls_[i]);
    case Kind::kString:
      return Value(strs_[i]);
    case Kind::kMixed:
      break;
  }
  return Value::Null_();
}

size_t ColumnData::CellBytes(size_t i) const {
  switch (kind_) {
    case Kind::kInt64:
    case Kind::kDouble:
      return IsNull(i) ? 1 : 8;
    case Kind::kString:
      return IsNull(i) ? 1 : strs_[i].size() + 8;
    case Kind::kMixed:
      return vals_[i].ByteSize();
  }
  return 0;
}

void ColumnarTable::AppendChunk(ColumnChunk chunk, size_t bytes) {
  if (chunk.length == 0) return;
  if (bytes == SIZE_MAX) {
    bytes = 0;
    for (const ColumnSlice& c : chunk.columns) {
      for (size_t i = 0; i < chunk.length; ++i) {
        bytes += c.col->CellBytes(c.offset + i);
      }
    }
  }
  num_rows_ += chunk.length;
  byte_size_ += bytes;
  chunks_.push_back(std::move(chunk));
}

void ColumnarTable::AppendTableZeroCopy(const ColumnarTable& other) {
  for (const ColumnChunk& chunk : other.chunks()) {
    chunks_.push_back(chunk);
    num_rows_ += chunk.length;
  }
  byte_size_ += other.byte_size();
}

Row ColumnarTable::MaterializeRow(size_t r) const {
  for (const ColumnChunk& chunk : chunks_) {
    if (r < chunk.length) {
      Row row;
      row.reserve(chunk.columns.size());
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        row.push_back(chunk.ValueAt(c, r));
      }
      return row;
    }
    r -= chunk.length;
  }
  return {};
}

std::vector<Row> ColumnarTable::MaterializeRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (const ColumnChunk& chunk : chunks_) {
    for (size_t i = 0; i < chunk.length; ++i) {
      Row row;
      row.reserve(chunk.columns.size());
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        row.push_back(chunk.ValueAt(c, i));
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

ColumnarTablePtr ColumnarFromRows(const Schema& schema,
                                  const std::vector<Row>& rows,
                                  size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1;
  auto out = std::make_shared<ColumnarTable>(schema);
  const size_t n = rows.size();
  const size_t ncols = schema.num_columns();
  for (size_t start = 0; start < n; start += batch_rows) {
    const size_t len = std::min(batch_rows, n - start);
    ColumnChunk chunk;
    chunk.length = len;
    chunk.columns.reserve(ncols);
    size_t bytes = 0;
    for (size_t c = 0; c < ncols; ++c) {
      auto col = std::make_shared<ColumnData>(schema.column(c).type);
      col->Reserve(len);
      for (size_t r = start; r < start + len; ++r) {
        col->AppendValue(rows[r][c]);
        bytes += rows[r][c].ByteSize();
      }
      chunk.columns.push_back(ColumnSlice{std::move(col), 0});
    }
    out->AppendChunk(std::move(chunk), bytes);
  }
  return out;
}

}  // namespace fedcal
