#include "storage/table.h"

#include "common/string_util.h"

namespace fedcal {

size_t Table::RowBytes(const Row& row) {
  size_t n = 0;
  for (const Value& v : row) n += v.ByteSize();
  return n;
}

std::shared_ptr<Table> Table::FromColumnar(std::string name,
                                           ColumnarTablePtr data) {
  auto t = std::make_shared<Table>(std::move(name), data->schema());
  t->bytes_ = data->byte_size();
  t->backing_ = std::move(data);
  t->rows_ready_.store(false, std::memory_order_release);
  return t;
}

void Table::EnsureRows() const {
  if (rows_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (rows_ready_.load(std::memory_order_relaxed)) return;
  rows_ = backing_->MaterializeRows();
  rows_ready_.store(true, std::memory_order_release);
}

ColumnarTablePtr Table::columnar(size_t batch_rows) const {
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (backing_ != nullptr) return backing_;
  if (columnar_cache_ != nullptr && columnar_cache_batch_ == batch_rows) {
    return columnar_cache_;
  }
  // Row-backed: rows_ is authoritative (EnsureRows is a no-op), build the
  // mirror. rows_ cannot change concurrently — appends are single-writer.
  columnar_cache_ = ColumnarFromRows(schema_, rows_, batch_rows);
  columnar_cache_batch_ = batch_rows;
  return columnar_cache_;
}

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "table %s: row arity %zu != schema arity %zu", name_.c_str(),
        row.size(), schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    const DataType t = schema_.column(i).type;
    const bool ok = (t == DataType::kInt64 && v.is_int64()) ||
                    (t == DataType::kDouble && v.is_numeric()) ||
                    (t == DataType::kString && v.is_string());
    if (!ok) {
      return Status::InvalidArgument(StringFormat(
          "table %s column %s: value %s does not match declared type %s",
          name_.c_str(), schema_.column(i).name.c_str(),
          v.ToString().c_str(), DataTypeName(t)));
    }
  }
  AppendRowUnchecked(std::move(row));
  return Status::OK();
}

std::shared_ptr<Table> Table::CloneAs(const std::string& new_name) const {
  auto copy = std::make_shared<Table>(new_name, schema_);
  copy->rows_ = rows();
  copy->bytes_ = bytes_;
  for (const auto& [name, index] : indexes_) {
    (void)copy->CreateIndex(name);
  }
  return copy;
}

Status Table::CreateIndex(const std::string& column_name) {
  const auto col = schema_.IndexOf(column_name);
  if (!col.has_value()) {
    return Status::NotFound("table " + name_ + " has no column " +
                            column_name);
  }
  EnsureRows();
  indexes_.erase(column_name);
  auto [it, inserted] =
      indexes_.emplace(column_name, HashIndex(column_name, *col));
  for (size_t r = 0; r < rows_.size(); ++r) {
    it->second.Insert(rows_[r], r);
  }
  return Status::OK();
}

const HashIndex* Table::GetIndex(const std::string& column_name) const {
  auto it = indexes_.find(column_name);
  return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& [name, index] : indexes_) out.push_back(name);
  return out;
}

}  // namespace fedcal
