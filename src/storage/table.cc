#include "storage/table.h"

#include "common/string_util.h"

namespace fedcal {

size_t Table::RowBytes(const Row& row) {
  size_t n = 0;
  for (const Value& v : row) n += v.ByteSize();
  return n;
}

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StringFormat(
        "table %s: row arity %zu != schema arity %zu", name_.c_str(),
        row.size(), schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row[i];
    if (v.is_null()) continue;
    const DataType t = schema_.column(i).type;
    const bool ok = (t == DataType::kInt64 && v.is_int64()) ||
                    (t == DataType::kDouble && v.is_numeric()) ||
                    (t == DataType::kString && v.is_string());
    if (!ok) {
      return Status::InvalidArgument(StringFormat(
          "table %s column %s: value %s does not match declared type %s",
          name_.c_str(), schema_.column(i).name.c_str(),
          v.ToString().c_str(), DataTypeName(t)));
    }
  }
  AppendRowUnchecked(std::move(row));
  return Status::OK();
}

std::shared_ptr<Table> Table::CloneAs(const std::string& new_name) const {
  auto copy = std::make_shared<Table>(new_name, schema_);
  copy->rows_ = rows_;
  copy->bytes_ = bytes_;
  for (const auto& [name, index] : indexes_) {
    (void)copy->CreateIndex(name);
  }
  return copy;
}

Status Table::CreateIndex(const std::string& column_name) {
  const auto col = schema_.IndexOf(column_name);
  if (!col.has_value()) {
    return Status::NotFound("table " + name_ + " has no column " +
                            column_name);
  }
  indexes_.erase(column_name);
  auto [it, inserted] =
      indexes_.emplace(column_name, HashIndex(column_name, *col));
  for (size_t r = 0; r < rows_.size(); ++r) {
    it->second.Insert(rows_[r], r);
  }
  return Status::OK();
}

const HashIndex* Table::GetIndex(const std::string& column_name) const {
  auto it = indexes_.find(column_name);
  return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& [name, index] : indexes_) out.push_back(name);
  return out;
}

}  // namespace fedcal
