#include "storage/datagen.h"

#include "common/string_util.h"

namespace fedcal {

namespace {

Value GenerateCell(const ColumnGenSpec& g, size_t row_index, Rng* rng) {
  using Kind = ColumnGenSpec::Kind;
  if (g.null_fraction > 0.0 && rng->Bernoulli(g.null_fraction)) {
    return Value::Null_();
  }
  switch (g.kind) {
    case Kind::kSerial:
      return Value(static_cast<int64_t>(row_index));
    case Kind::kUniformInt:
      return Value(rng->UniformInt(g.int_lo, g.int_hi));
    case Kind::kZipfInt: {
      const int64_t n = g.int_hi - g.int_lo + 1;
      return Value(g.int_lo + rng->Zipf(n, g.skew) - 1);
    }
    case Kind::kUniformDouble:
      return Value(rng->UniformDouble(g.dbl_lo, g.dbl_hi));
    case Kind::kStringPool: {
      const int64_t i =
          rng->UniformInt(0, static_cast<int64_t>(g.pool.size()) - 1);
      return Value(g.pool[static_cast<size_t>(i)]);
    }
    case Kind::kStringTag:
      return Value(g.prefix + std::to_string(rng->UniformInt(g.int_lo, g.int_hi)));
  }
  return Value::Null_();
}

}  // namespace

ScaleRows PresetRows(ScalePreset preset) {
  switch (preset) {
    case ScalePreset::kSmall:
      return {100'000, 1'000};
    case ScalePreset::kMedium:
      return {1'000'000, 10'000};
    case ScalePreset::kLarge:
      return {10'000'000, 100'000};
  }
  return {100'000, 1'000};
}

const char* ScalePresetName(ScalePreset preset) {
  switch (preset) {
    case ScalePreset::kSmall:
      return "small";
    case ScalePreset::kMedium:
      return "medium";
    case ScalePreset::kLarge:
      return "large";
  }
  return "?";
}

Result<TablePtr> GenerateTable(const TableGenSpec& spec, Rng* rng) {
  if (spec.columns.size() != spec.generators.size()) {
    return Status::InvalidArgument(StringFormat(
        "table %s: %zu columns but %zu generators", spec.name.c_str(),
        spec.columns.size(), spec.generators.size()));
  }
  for (size_t i = 0; i < spec.generators.size(); ++i) {
    const auto& g = spec.generators[i];
    if (g.kind == ColumnGenSpec::Kind::kStringPool && g.pool.empty()) {
      return Status::InvalidArgument(
          "empty string pool for column " + spec.columns[i].name);
    }
    if ((g.kind == ColumnGenSpec::Kind::kUniformInt ||
         g.kind == ColumnGenSpec::Kind::kZipfInt) &&
        g.int_hi < g.int_lo) {
      return Status::InvalidArgument(
          "empty integer range for column " + spec.columns[i].name);
    }
  }

  auto table = std::make_shared<Table>(spec.name, Schema(spec.columns));
  table->Reserve(spec.num_rows);
  for (size_t r = 0; r < spec.num_rows; ++r) {
    Row row;
    row.reserve(spec.columns.size());
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      row.push_back(GenerateCell(spec.generators[c], r, rng));
    }
    table->AppendRowUnchecked(std::move(row));
  }
  return table;
}

}  // namespace fedcal
