#include "storage/index.h"

namespace fedcal {

void HashIndex::Insert(const Row& row, size_t row_id) {
  if (column_index_ >= row.size()) return;
  const Value& key = row[column_index_];
  if (key.is_null()) return;
  entries_.emplace(key.Hash(), row_id);
}

std::vector<size_t> HashIndex::Probe(const Value& key) const {
  std::vector<size_t> out;
  if (key.is_null()) return out;
  auto [begin, end] = entries_.equal_range(key.Hash());
  for (auto it = begin; it != end; ++it) out.push_back(it->second);
  return out;
}

}  // namespace fedcal
