#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "storage/table.h"

namespace fedcal {

/// \brief Per-column value-generation recipe.
///
/// The experiment scenario (§5 of the paper) populates tables with randomly
/// generated data; these specs describe each column's distribution.
struct ColumnGenSpec {
  enum class Kind {
    kSerial,        ///< 0, 1, 2, ... (primary keys)
    kUniformInt,    ///< uniform in [int_lo, int_hi]
    kZipfInt,       ///< int_lo + Zipf(int_hi - int_lo + 1, skew) - 1
    kUniformDouble, ///< uniform in [dbl_lo, dbl_hi)
    kStringPool,    ///< uniform pick from `pool`
    kStringTag,     ///< prefix + uniform int in [int_lo, int_hi]
  };

  Kind kind = Kind::kUniformInt;
  int64_t int_lo = 0;
  int64_t int_hi = 0;
  double dbl_lo = 0.0;
  double dbl_hi = 1.0;
  double skew = 1.1;                 ///< zipf skew
  double null_fraction = 0.0;        ///< probability a cell is NULL
  std::vector<std::string> pool;     ///< for kStringPool
  std::string prefix;                ///< for kStringTag

  static ColumnGenSpec Serial() {
    ColumnGenSpec s;
    s.kind = Kind::kSerial;
    return s;
  }
  static ColumnGenSpec UniformInt(int64_t lo, int64_t hi) {
    ColumnGenSpec s;
    s.kind = Kind::kUniformInt;
    s.int_lo = lo;
    s.int_hi = hi;
    return s;
  }
  static ColumnGenSpec ZipfInt(int64_t lo, int64_t hi, double skew) {
    ColumnGenSpec s;
    s.kind = Kind::kZipfInt;
    s.int_lo = lo;
    s.int_hi = hi;
    s.skew = skew;
    return s;
  }
  static ColumnGenSpec UniformDouble(double lo, double hi) {
    ColumnGenSpec s;
    s.kind = Kind::kUniformDouble;
    s.dbl_lo = lo;
    s.dbl_hi = hi;
    return s;
  }
  static ColumnGenSpec StringPool(std::vector<std::string> pool) {
    ColumnGenSpec s;
    s.kind = Kind::kStringPool;
    s.pool = std::move(pool);
    return s;
  }
  static ColumnGenSpec StringTag(std::string prefix, int64_t lo, int64_t hi) {
    ColumnGenSpec s;
    s.kind = Kind::kStringTag;
    s.prefix = std::move(prefix);
    s.int_lo = lo;
    s.int_hi = hi;
    return s;
  }
};

/// \brief Named cardinality tiers for generated testbeds.
///
/// The seed fixtures and unit tests stay on kSmall (the paper's §5 sizes);
/// the columnar-engine benchmarks and scaling experiments pick kMedium or
/// kLarge without touching any fixture. Generation is deterministic for a
/// given (preset, seed) pair.
enum class ScalePreset {
  kSmall,   ///< 100k-row large tables, 1k-row small tables (paper §5)
  kMedium,  ///< 1M / 10k
  kLarge,   ///< 10M / 100k
};

/// \brief Row counts for one scale preset.
struct ScaleRows {
  size_t large_rows = 0;
  size_t small_rows = 0;
};

ScaleRows PresetRows(ScalePreset preset);
const char* ScalePresetName(ScalePreset preset);

/// \brief Full recipe for one generated table.
struct TableGenSpec {
  std::string name;
  size_t num_rows = 0;
  std::vector<ColumnDef> columns;
  std::vector<ColumnGenSpec> generators;  ///< parallel to `columns`
};

/// \brief Generates a table per the spec. Deterministic given the Rng state.
Result<TablePtr> GenerateTable(const TableGenSpec& spec, Rng* rng);

}  // namespace fedcal
