#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace fedcal {

class Table;

/// \brief A hash index over one column of a table: equality lookups
/// return matching row ids without scanning.
///
/// Maintained incrementally as rows are appended. NULL keys are not
/// indexed (SQL equality never matches NULL).
class HashIndex {
 public:
  HashIndex(std::string column_name, size_t column_index)
      : column_name_(std::move(column_name)), column_index_(column_index) {}

  const std::string& column_name() const { return column_name_; }
  size_t column_index() const { return column_index_; }
  size_t num_entries() const { return entries_.size(); }

  /// Indexes one row (called by Table on append).
  void Insert(const Row& row, size_t row_id);

  /// Row ids whose key equals `key` (hash probe + exact verification by
  /// the caller via the table; hash collisions are possible here).
  std::vector<size_t> Probe(const Value& key) const;

  void Clear() { entries_.clear(); }

 private:
  std::string column_name_;
  size_t column_index_;
  std::unordered_multimap<size_t, size_t> entries_;  ///< hash -> row id
};

}  // namespace fedcal
