#include "storage/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace fedcal {

namespace {

/// Splits CSV text into records of raw cells, honoring quotes. Tracks
/// whether each cell was quoted (quoted empty strings are not NULL).
struct Cell {
  std::string text;
  bool quoted = false;
};

Result<std::vector<std::vector<Cell>>> SplitRecords(
    const std::string& text, char delimiter) {
  std::vector<std::vector<Cell>> records;
  std::vector<Cell> current;
  Cell cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    current.push_back(std::move(cell));
    cell = Cell{};
    cell_started = false;
  };
  auto end_record = [&] {
    end_cell();
    records.push_back(std::move(current));
    current.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.text.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.text.push_back(c);
      }
      continue;
    }
    if (c == '"' && !cell_started) {
      in_quotes = true;
      cell.quoted = true;
      cell_started = true;
    } else if (c == delimiter) {
      end_cell();
    } else if (c == '\n') {
      // Tolerate \r\n line endings.
      if (!cell.text.empty() && cell.text.back() == '\r') {
        cell.text.pop_back();
      }
      end_record();
    } else {
      cell.text.push_back(c);
      cell_started = true;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote in CSV input");
  }
  // Trailing record without a final newline.
  if (cell_started || cell.quoted || !current.empty()) {
    if (!cell.text.empty() && cell.text.back() == '\r') {
      cell.text.pop_back();
    }
    end_record();
  }
  return records;
}

Result<Value> ParseCell(const Cell& cell, DataType type,
                        const CsvOptions& options) {
  if (!cell.quoted && cell.text == options.null_token) {
    return Value::Null_();
  }
  switch (type) {
    case DataType::kInt64:
      try {
        size_t used = 0;
        const int64_t v = std::stoll(cell.text, &used);
        if (used != cell.text.size()) {
          return Status::ParseError("bad integer cell '" + cell.text + "'");
        }
        return Value(v);
      } catch (const std::exception&) {
        return Status::ParseError("bad integer cell '" + cell.text + "'");
      }
    case DataType::kDouble:
      try {
        size_t used = 0;
        const double v = std::stod(cell.text, &used);
        if (used != cell.text.size()) {
          return Status::ParseError("bad double cell '" + cell.text + "'");
        }
        return Value(v);
      } catch (const std::exception&) {
        return Status::ParseError("bad double cell '" + cell.text + "'");
      }
    case DataType::kString:
      return Value(cell.text);
  }
  return Status::Internal("unhandled data type");
}

std::string QuoteCell(const std::string& text, char delimiter) {
  const bool needs_quotes =
      text.find(delimiter) != std::string::npos ||
      text.find('"') != std::string::npos ||
      text.find('\n') != std::string::npos || text.empty();
  if (!needs_quotes) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Result<TablePtr> ReadCsv(const std::string& csv_text,
                         const std::string& table_name, Schema schema,
                         CsvOptions options) {
  FEDCAL_ASSIGN_OR_RETURN(auto records,
                          SplitRecords(csv_text, options.delimiter));
  auto table = std::make_shared<Table>(table_name, schema);
  size_t start = 0;
  if (options.header) {
    if (records.empty()) {
      return Status::ParseError("CSV has no header record");
    }
    const auto& header = records[0];
    if (header.size() != schema.num_columns()) {
      return Status::ParseError(StringFormat(
          "CSV header has %zu columns, schema has %zu", header.size(),
          schema.num_columns()));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c].text != schema.column(c).name) {
        return Status::ParseError("CSV header column '" + header[c].text +
                                  "' does not match schema column '" +
                                  schema.column(c).name + "'");
      }
    }
    start = 1;
  }
  table->Reserve(records.size() - start);
  for (size_t r = start; r < records.size(); ++r) {
    const auto& record = records[r];
    // Skip completely blank trailing records.
    if (record.size() == 1 && record[0].text.empty() && !record[0].quoted) {
      continue;
    }
    if (record.size() != schema.num_columns()) {
      return Status::ParseError(StringFormat(
          "CSV record %zu has %zu cells, expected %zu", r, record.size(),
          schema.num_columns()));
    }
    Row row;
    row.reserve(record.size());
    for (size_t c = 0; c < record.size(); ++c) {
      FEDCAL_ASSIGN_OR_RETURN(
          Value v, ParseCell(record[c], schema.column(c).type, options));
      row.push_back(std::move(v));
    }
    table->AppendRowUnchecked(std::move(row));
  }
  return table;
}

Result<TablePtr> ReadCsvFile(const std::string& path,
                             const std::string& table_name, Schema schema,
                             CsvOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsv(buffer.str(), table_name, std::move(schema), options);
}

std::string WriteCsv(const Table& table, CsvOptions options) {
  std::string out;
  const Schema& schema = table.schema();
  if (options.header) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c) out.push_back(options.delimiter);
      out += QuoteCell(schema.column(c).name, options.delimiter);
    }
    out.push_back('\n');
  }
  for (const Row& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out.push_back(options.delimiter);
      const Value& v = row[c];
      if (v.is_null()) {
        out += options.null_token;
      } else if (v.is_string()) {
        out += QuoteCell(v.AsString(), options.delimiter);
      } else if (v.is_int64()) {
        out += std::to_string(v.AsInt64());
      } else {
        out += StringFormat("%.17g", v.AsDouble());
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    CsvOptions options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot write " + path);
  out << WriteCsv(table, options);
  return out.good() ? Status::OK()
                    : Status::Internal("write failed for " + path);
}

}  // namespace fedcal
