#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column_chunk.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fedcal {

/// \brief An in-memory relational table.
///
/// Tables are owned by simulated remote servers; the execution engine scans
/// them through this interface. Appends validate arity and type against the
/// schema (nulls are accepted in any column).
///
/// A table is backed by rows, by a columnar payload, or by both:
///  - Row-backed (the default): `rows_` is authoritative; `columnar()`
///    builds and caches a columnar mirror on first use (invalidated by
///    appends), so repeated columnar scans of a base table pay the
///    row-to-column conversion once.
///  - Columnar-backed (`FromColumnar`): the columnar engine's results wrap
///    their chunks directly; rows materialize lazily on first `rows()` /
///    `row()` access, so a fragment result that is only ever scanned
///    columnar (shipped to the integrator and merged) never materializes a
///    single Row.
/// Both lazy conversions are guarded by an internal mutex; all other state
/// follows the engine's usual single-writer discipline.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Wraps a columnar result without materializing rows. `byte_size` and
  /// `num_rows` come from the columnar payload.
  static std::shared_ptr<Table> FromColumnar(std::string name,
                                             ColumnarTablePtr data);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const {
    return rows_ready_.load(std::memory_order_acquire)
               ? rows_.size()
               : backing_->num_rows();
  }
  const Row& row(size_t i) const {
    EnsureRows();
    return rows_[i];
  }
  const std::vector<Row>& rows() const {
    EnsureRows();
    return rows_;
  }

  /// Appends a row after checking arity and per-column type.
  Status AppendRow(Row row);

  /// Appends without validation (used by the generator on its own output).
  void AppendRowUnchecked(Row row) {
    EnsureRows();
    InvalidateColumnar();
    bytes_ += RowBytes(row);
    for (auto& [name, index] : indexes_) {
      index.Insert(row, rows_.size());
    }
    rows_.push_back(std::move(row));
  }

  /// Reserves capacity for `n` rows (materialization hint on hot append
  /// paths).
  void Reserve(size_t n) {
    EnsureRows();
    rows_.reserve(n);
  }

  void Clear() {
    EnsureRows();
    InvalidateColumnar();
    rows_.clear();
    bytes_ = 0;
    for (auto& [name, index] : indexes_) index.Clear();
  }

  /// Approximate total payload bytes (drives network-transfer costs).
  size_t byte_size() const { return bytes_; }
  double avg_row_bytes() const {
    const size_t n = num_rows();
    return n == 0 ? 0.0 : static_cast<double>(bytes_) / n;
  }

  /// Columnar view of this table, built in chunks of `batch_rows` rows.
  /// Columnar-backed tables return their payload directly (whatever its
  /// chunking); row-backed tables build the mirror once and cache it until
  /// the next append. Thread-safe.
  ColumnarTablePtr columnar(size_t batch_rows) const;

  /// Deep copy with a new name (replica creation). Indexes are rebuilt on
  /// the clone.
  std::shared_ptr<Table> CloneAs(const std::string& new_name) const;

  // -- Indexes ---------------------------------------------------------------

  /// Builds (or rebuilds) a hash index on the named column.
  Status CreateIndex(const std::string& column_name);
  /// The index on `column_name`, or nullptr.
  const HashIndex* GetIndex(const std::string& column_name) const;
  /// Names of indexed columns (sorted).
  std::vector<std::string> indexed_columns() const;

 private:
  static size_t RowBytes(const Row& row);

  /// Materializes rows from the columnar backing on first access.
  void EnsureRows() const;
  /// Drops the cached columnar mirror (and the backing's authority) after
  /// a mutation; rows are authoritative from then on.
  void InvalidateColumnar() {
    if (backing_ != nullptr || columnar_cache_ != nullptr) {
      std::lock_guard<std::mutex> lock(lazy_mu_);
      backing_ = nullptr;
      columnar_cache_ = nullptr;
    }
  }

  std::string name_;
  Schema schema_;
  mutable std::vector<Row> rows_;
  size_t bytes_ = 0;
  std::map<std::string, HashIndex> indexes_;

  /// Columnar payload this table was created from (FromColumnar), if any.
  ColumnarTablePtr backing_;
  /// True once `rows_` is authoritative (always true for row-backed).
  mutable std::atomic<bool> rows_ready_{true};
  /// Cached row->column mirror for row-backed tables, and its chunking.
  mutable ColumnarTablePtr columnar_cache_;
  mutable size_t columnar_cache_batch_ = 0;
  mutable std::mutex lazy_mu_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace fedcal
