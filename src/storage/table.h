#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/index.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace fedcal {

/// \brief An in-memory, row-oriented relational table.
///
/// Tables are owned by simulated remote servers; the execution engine scans
/// them through this interface. Appends validate arity and type against the
/// schema (nulls are accepted in any column).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row after checking arity and per-column type.
  Status AppendRow(Row row);

  /// Appends without validation (used by the generator on its own output).
  void AppendRowUnchecked(Row row) {
    bytes_ += RowBytes(row);
    for (auto& [name, index] : indexes_) {
      index.Insert(row, rows_.size());
    }
    rows_.push_back(std::move(row));
  }

  void Clear() {
    rows_.clear();
    bytes_ = 0;
    for (auto& [name, index] : indexes_) index.Clear();
  }

  /// Approximate total payload bytes (drives network-transfer costs).
  size_t byte_size() const { return bytes_; }
  double avg_row_bytes() const {
    return rows_.empty() ? 0.0
                         : static_cast<double>(bytes_) / rows_.size();
  }

  /// Deep copy with a new name (replica creation). Indexes are rebuilt on
  /// the clone.
  std::shared_ptr<Table> CloneAs(const std::string& new_name) const;

  // -- Indexes ---------------------------------------------------------------

  /// Builds (or rebuilds) a hash index on the named column.
  Status CreateIndex(const std::string& column_name);
  /// The index on `column_name`, or nullptr.
  const HashIndex* GetIndex(const std::string& column_name) const;
  /// Names of indexed columns (sorted).
  std::vector<std::string> indexed_columns() const;

 private:
  static size_t RowBytes(const Row& row);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  size_t bytes_ = 0;
  std::map<std::string, HashIndex> indexes_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace fedcal
