#pragma once

#include <string>
#include <vector>

#include "stats/histogram.h"
#include "storage/table.h"

namespace fedcal {

/// \brief Comparison operators the selectivity estimator understands.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// \brief Per-column statistics: cardinality profile plus an equi-depth
/// histogram for numeric columns.
struct ColumnStats {
  std::string name;
  DataType type = DataType::kInt64;
  size_t num_values = 0;  ///< non-null values
  size_t null_count = 0;
  size_t num_distinct = 0;
  Value min_value;
  Value max_value;
  Histogram histogram;  ///< numeric columns only

  /// Estimated fraction of rows satisfying `col <op> literal`, in [0, 1].
  double Selectivity(CompareOp op, const Value& literal) const;
};

/// \brief Statistics for a whole table, the substrate for the optimizer's
/// cost model (the federated analog of the DB2 catalog statistics that II
/// caches for nicknames).
struct TableStats {
  std::string table_name;
  size_t num_rows = 0;
  double avg_row_bytes = 0.0;
  std::vector<ColumnStats> columns;
  /// Columns with a hash index (access paths the planner may use).
  std::vector<std::string> indexed_columns;

  /// Collects exact statistics by scanning the table; histogram bucket
  /// count is configurable (default 32).
  static TableStats Compute(const Table& table, size_t histogram_buckets = 32);

  const ColumnStats* FindColumn(const std::string& name) const;

  std::string ToString() const;
};

}  // namespace fedcal
