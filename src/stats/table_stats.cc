#include "stats/table_stats.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace fedcal {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

double ColumnStats::Selectivity(CompareOp op, const Value& literal) const {
  if (num_values == 0) return 0.0;
  const double uniform_eq =
      num_distinct > 0 ? 1.0 / static_cast<double>(num_distinct) : 1.0;

  if (literal.is_null()) return 0.0;  // comparisons with NULL match nothing

  if (type == DataType::kString || literal.is_string() ||
      histogram.empty()) {
    // No histogram: fall back to the classic System-R uniform estimates.
    switch (op) {
      case CompareOp::kEq:
        return uniform_eq;
      case CompareOp::kNe:
        return 1.0 - uniform_eq;
      default:
        return 1.0 / 3.0;
    }
  }

  const double x = literal.AsDouble();
  switch (op) {
    case CompareOp::kEq:
      return histogram.EstimateEquals(x);
    case CompareOp::kNe:
      return 1.0 - histogram.EstimateEquals(x);
    case CompareOp::kLt:
      return histogram.EstimateLessThan(x);
    case CompareOp::kLe:
      return histogram.EstimateLessThan(x) + histogram.EstimateEquals(x);
    case CompareOp::kGt:
      return std::max(0.0, 1.0 - histogram.EstimateLessThan(x) -
                               histogram.EstimateEquals(x));
    case CompareOp::kGe:
      return std::max(0.0, 1.0 - histogram.EstimateLessThan(x));
  }
  return 1.0 / 3.0;
}

TableStats TableStats::Compute(const Table& table, size_t histogram_buckets) {
  TableStats ts;
  ts.table_name = table.name();
  ts.num_rows = table.num_rows();
  ts.avg_row_bytes = table.avg_row_bytes();
  ts.indexed_columns = table.indexed_columns();

  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    ColumnStats cs;
    cs.name = schema.column(c).name;
    cs.type = schema.column(c).type;

    std::unordered_set<size_t> distinct_hashes;
    std::vector<double> numeric_values;
    bool first = true;
    for (const Row& row : table.rows()) {
      const Value& v = row[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      ++cs.num_values;
      distinct_hashes.insert(v.Hash());
      if (v.is_numeric()) numeric_values.push_back(v.AsDouble());
      if (first) {
        cs.min_value = v;
        cs.max_value = v;
        first = false;
      } else {
        if (v < cs.min_value) cs.min_value = v;
        if (cs.max_value < v) cs.max_value = v;
      }
    }
    cs.num_distinct = distinct_hashes.size();
    if (!numeric_values.empty()) {
      cs.histogram =
          Histogram::Build(std::move(numeric_values), histogram_buckets);
    }
    ts.columns.push_back(std::move(cs));
  }
  return ts;
}

const ColumnStats* TableStats::FindColumn(const std::string& name) const {
  for (const auto& c : columns) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string TableStats::ToString() const {
  std::string out = StringFormat("TableStats(%s, rows=%zu, avg_bytes=%.1f)",
                                 table_name.c_str(), num_rows, avg_row_bytes);
  for (const auto& c : columns) {
    out += StringFormat("\n  %s: n=%zu nulls=%zu distinct=%zu", c.name.c_str(),
                        c.num_values, c.null_count, c.num_distinct);
  }
  return out;
}

}  // namespace fedcal
