#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace fedcal {

Histogram Histogram::Build(std::vector<double> values, size_t num_buckets) {
  Histogram h;
  if (values.empty()) return h;
  std::sort(values.begin(), values.end());
  num_buckets = std::max<size_t>(1, std::min(num_buckets, values.size()));
  h.total_count_ = values.size();

  const size_t n = values.size();
  h.bounds_.push_back(values.front());
  size_t start = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    // Equi-depth boundary: round-robin the remainder across buckets.
    size_t end = (n * (b + 1)) / num_buckets;
    if (end <= start) continue;
    // Extend the bucket so equal values never straddle a boundary; this
    // keeps EstimateEquals consistent for heavy hitters.
    while (end < n && values[end] == values[end - 1]) ++end;
    size_t distinct = 1;
    for (size_t i = start + 1; i < end; ++i) {
      if (values[i] != values[i - 1]) ++distinct;
    }
    h.bounds_.push_back(values[end - 1]);
    h.counts_.push_back(end - start);
    h.distinct_.push_back(distinct);
    start = end;
    if (start >= n) break;
  }
  return h;
}

double Histogram::EstimateLessThan(double x) const {
  if (empty()) return 0.0;
  if (x <= bounds_.front()) return 0.0;
  if (x > bounds_.back()) return 1.0;
  double below = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double lo = bounds_[b];
    const double hi = bounds_[b + 1];
    if (x > hi) {
      below += static_cast<double>(counts_[b]);
      continue;
    }
    // x falls inside bucket b: interpolate.
    const double width = hi - lo;
    const double frac = width <= 0.0 ? 0.0 : (x - lo) / width;
    below += frac * static_cast<double>(counts_[b]);
    break;
  }
  return below / static_cast<double>(total_count_);
}

double Histogram::EstimateEquals(double x) const {
  if (empty()) return 0.0;
  if (x < bounds_.front() || x > bounds_.back()) return 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (x <= bounds_[b + 1]) {
      const double d = std::max<size_t>(1, distinct_[b]);
      return (static_cast<double>(counts_[b]) / d) /
             static_cast<double>(total_count_);
    }
  }
  return 0.0;
}

double Histogram::EstimateBetween(double lo, double hi) const {
  if (empty() || hi < lo) return 0.0;
  const double below_hi = EstimateLessThan(std::nextafter(hi, 1e300));
  const double below_lo = EstimateLessThan(lo);
  return std::max(0.0, below_hi - below_lo);
}

std::string Histogram::ToString() const {
  std::string out = StringFormat("Histogram(n=%zu, buckets=%zu)[",
                                 total_count_, num_buckets());
  for (size_t b = 0; b < counts_.size(); ++b) {
    out += StringFormat("%s(%g..%g]:%zu", b ? ", " : "", bounds_[b],
                        bounds_[b + 1], counts_[b]);
  }
  out += "]";
  return out;
}

}  // namespace fedcal
