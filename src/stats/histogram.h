#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fedcal {

/// \brief Equi-depth histogram over numeric column values.
///
/// Built once at statistics-collection time (the federated system's analog
/// of DB2 RUNSTATS) and used by the cost model for selectivity estimation.
/// Buckets hold approximately equal row counts; estimates interpolate
/// linearly within a bucket.
class Histogram {
 public:
  Histogram() = default;

  /// Build from an unsorted sample of values. `num_buckets` is clamped to
  /// [1, values.size()].
  static Histogram Build(std::vector<double> values, size_t num_buckets);

  bool empty() const { return total_count_ == 0; }
  size_t num_buckets() const {
    return bounds_.empty() ? 0 : bounds_.size() - 1;
  }
  size_t total_count() const { return total_count_; }

  /// Estimated fraction of values strictly less than x, in [0, 1].
  double EstimateLessThan(double x) const;

  /// Estimated fraction equal to x (bucket density / distinct-in-bucket).
  double EstimateEquals(double x) const;

  /// Estimated fraction in [lo, hi].
  double EstimateBetween(double lo, double hi) const;

  double min() const { return bounds_.empty() ? 0.0 : bounds_.front(); }
  double max() const { return bounds_.empty() ? 0.0 : bounds_.back(); }

  std::string ToString() const;

 private:
  // bounds_[i], bounds_[i+1] delimit bucket i; counts_[i] rows in bucket i;
  // distinct_[i] approximate distinct values in bucket i.
  std::vector<double> bounds_;
  std::vector<size_t> counts_;
  std::vector<size_t> distinct_;
  size_t total_count_ = 0;
};

}  // namespace fedcal
