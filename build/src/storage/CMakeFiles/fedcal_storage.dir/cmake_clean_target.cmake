file(REMOVE_RECURSE
  "libfedcal_storage.a"
)
