# Empty dependencies file for fedcal_storage.
# This may be replaced when dependencies are built.
