file(REMOVE_RECURSE
  "CMakeFiles/fedcal_storage.dir/csv.cc.o"
  "CMakeFiles/fedcal_storage.dir/csv.cc.o.d"
  "CMakeFiles/fedcal_storage.dir/datagen.cc.o"
  "CMakeFiles/fedcal_storage.dir/datagen.cc.o.d"
  "CMakeFiles/fedcal_storage.dir/index.cc.o"
  "CMakeFiles/fedcal_storage.dir/index.cc.o.d"
  "CMakeFiles/fedcal_storage.dir/schema.cc.o"
  "CMakeFiles/fedcal_storage.dir/schema.cc.o.d"
  "CMakeFiles/fedcal_storage.dir/table.cc.o"
  "CMakeFiles/fedcal_storage.dir/table.cc.o.d"
  "CMakeFiles/fedcal_storage.dir/value.cc.o"
  "CMakeFiles/fedcal_storage.dir/value.cc.o.d"
  "libfedcal_storage.a"
  "libfedcal_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
