# Empty compiler generated dependencies file for fedcal_catalog.
# This may be replaced when dependencies are built.
