file(REMOVE_RECURSE
  "CMakeFiles/fedcal_catalog.dir/global_catalog.cc.o"
  "CMakeFiles/fedcal_catalog.dir/global_catalog.cc.o.d"
  "libfedcal_catalog.a"
  "libfedcal_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
