file(REMOVE_RECURSE
  "libfedcal_catalog.a"
)
