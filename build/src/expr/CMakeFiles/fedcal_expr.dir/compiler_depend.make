# Empty compiler generated dependencies file for fedcal_expr.
# This may be replaced when dependencies are built.
