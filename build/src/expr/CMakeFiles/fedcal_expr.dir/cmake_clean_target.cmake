file(REMOVE_RECURSE
  "libfedcal_expr.a"
)
