file(REMOVE_RECURSE
  "CMakeFiles/fedcal_expr.dir/bound_expr.cc.o"
  "CMakeFiles/fedcal_expr.dir/bound_expr.cc.o.d"
  "libfedcal_expr.a"
  "libfedcal_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
