# Empty dependencies file for fedcal_federation.
# This may be replaced when dependencies are built.
