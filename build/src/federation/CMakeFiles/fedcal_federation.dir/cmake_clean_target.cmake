file(REMOVE_RECURSE
  "libfedcal_federation.a"
)
