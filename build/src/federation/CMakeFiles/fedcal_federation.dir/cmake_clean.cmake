file(REMOVE_RECURSE
  "CMakeFiles/fedcal_federation.dir/decomposer.cc.o"
  "CMakeFiles/fedcal_federation.dir/decomposer.cc.o.d"
  "CMakeFiles/fedcal_federation.dir/global_optimizer.cc.o"
  "CMakeFiles/fedcal_federation.dir/global_optimizer.cc.o.d"
  "CMakeFiles/fedcal_federation.dir/integrator.cc.o"
  "CMakeFiles/fedcal_federation.dir/integrator.cc.o.d"
  "CMakeFiles/fedcal_federation.dir/patroller.cc.o"
  "CMakeFiles/fedcal_federation.dir/patroller.cc.o.d"
  "libfedcal_federation.a"
  "libfedcal_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
