# Empty dependencies file for fedcal_wrapper.
# This may be replaced when dependencies are built.
