file(REMOVE_RECURSE
  "CMakeFiles/fedcal_wrapper.dir/wrapper.cc.o"
  "CMakeFiles/fedcal_wrapper.dir/wrapper.cc.o.d"
  "libfedcal_wrapper.a"
  "libfedcal_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
