file(REMOVE_RECURSE
  "libfedcal_wrapper.a"
)
