file(REMOVE_RECURSE
  "libfedcal_common.a"
)
