file(REMOVE_RECURSE
  "CMakeFiles/fedcal_common.dir/logging.cc.o"
  "CMakeFiles/fedcal_common.dir/logging.cc.o.d"
  "CMakeFiles/fedcal_common.dir/rng.cc.o"
  "CMakeFiles/fedcal_common.dir/rng.cc.o.d"
  "CMakeFiles/fedcal_common.dir/running_stats.cc.o"
  "CMakeFiles/fedcal_common.dir/running_stats.cc.o.d"
  "CMakeFiles/fedcal_common.dir/status.cc.o"
  "CMakeFiles/fedcal_common.dir/status.cc.o.d"
  "CMakeFiles/fedcal_common.dir/string_util.cc.o"
  "CMakeFiles/fedcal_common.dir/string_util.cc.o.d"
  "libfedcal_common.a"
  "libfedcal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
