# Empty compiler generated dependencies file for fedcal_common.
# This may be replaced when dependencies are built.
