# Empty dependencies file for fedcal_qcc.
# This may be replaced when dependencies are built.
