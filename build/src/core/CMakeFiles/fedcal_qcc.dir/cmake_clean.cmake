file(REMOVE_RECURSE
  "CMakeFiles/fedcal_qcc.dir/availability.cc.o"
  "CMakeFiles/fedcal_qcc.dir/availability.cc.o.d"
  "CMakeFiles/fedcal_qcc.dir/calibration_store.cc.o"
  "CMakeFiles/fedcal_qcc.dir/calibration_store.cc.o.d"
  "CMakeFiles/fedcal_qcc.dir/load_balancer.cc.o"
  "CMakeFiles/fedcal_qcc.dir/load_balancer.cc.o.d"
  "CMakeFiles/fedcal_qcc.dir/qcc.cc.o"
  "CMakeFiles/fedcal_qcc.dir/qcc.cc.o.d"
  "CMakeFiles/fedcal_qcc.dir/reliability.cc.o"
  "CMakeFiles/fedcal_qcc.dir/reliability.cc.o.d"
  "CMakeFiles/fedcal_qcc.dir/replica_advisor.cc.o"
  "CMakeFiles/fedcal_qcc.dir/replica_advisor.cc.o.d"
  "CMakeFiles/fedcal_qcc.dir/whatif.cc.o"
  "CMakeFiles/fedcal_qcc.dir/whatif.cc.o.d"
  "libfedcal_qcc.a"
  "libfedcal_qcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_qcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
