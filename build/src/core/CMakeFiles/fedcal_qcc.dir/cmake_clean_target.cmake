file(REMOVE_RECURSE
  "libfedcal_qcc.a"
)
