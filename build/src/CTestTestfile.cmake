# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("storage")
subdirs("stats")
subdirs("sql")
subdirs("expr")
subdirs("engine")
subdirs("cost")
subdirs("net")
subdirs("server")
subdirs("catalog")
subdirs("wrapper")
subdirs("federation")
subdirs("metawrapper")
subdirs("core")
subdirs("workload")
