file(REMOVE_RECURSE
  "libfedcal_metawrapper.a"
)
