file(REMOVE_RECURSE
  "CMakeFiles/fedcal_metawrapper.dir/meta_wrapper.cc.o"
  "CMakeFiles/fedcal_metawrapper.dir/meta_wrapper.cc.o.d"
  "libfedcal_metawrapper.a"
  "libfedcal_metawrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_metawrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
