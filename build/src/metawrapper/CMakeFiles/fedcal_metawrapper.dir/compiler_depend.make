# Empty compiler generated dependencies file for fedcal_metawrapper.
# This may be replaced when dependencies are built.
