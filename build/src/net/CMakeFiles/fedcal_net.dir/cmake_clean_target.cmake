file(REMOVE_RECURSE
  "libfedcal_net.a"
)
