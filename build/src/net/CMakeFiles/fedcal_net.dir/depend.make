# Empty dependencies file for fedcal_net.
# This may be replaced when dependencies are built.
