file(REMOVE_RECURSE
  "CMakeFiles/fedcal_net.dir/network.cc.o"
  "CMakeFiles/fedcal_net.dir/network.cc.o.d"
  "libfedcal_net.a"
  "libfedcal_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
