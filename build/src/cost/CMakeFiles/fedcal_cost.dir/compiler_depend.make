# Empty compiler generated dependencies file for fedcal_cost.
# This may be replaced when dependencies are built.
