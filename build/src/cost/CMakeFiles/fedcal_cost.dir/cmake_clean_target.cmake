file(REMOVE_RECURSE
  "libfedcal_cost.a"
)
