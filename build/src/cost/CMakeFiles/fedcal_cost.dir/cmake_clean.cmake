file(REMOVE_RECURSE
  "CMakeFiles/fedcal_cost.dir/cost_model.cc.o"
  "CMakeFiles/fedcal_cost.dir/cost_model.cc.o.d"
  "CMakeFiles/fedcal_cost.dir/planner.cc.o"
  "CMakeFiles/fedcal_cost.dir/planner.cc.o.d"
  "libfedcal_cost.a"
  "libfedcal_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
