file(REMOVE_RECURSE
  "libfedcal_stats.a"
)
