file(REMOVE_RECURSE
  "CMakeFiles/fedcal_stats.dir/histogram.cc.o"
  "CMakeFiles/fedcal_stats.dir/histogram.cc.o.d"
  "CMakeFiles/fedcal_stats.dir/table_stats.cc.o"
  "CMakeFiles/fedcal_stats.dir/table_stats.cc.o.d"
  "libfedcal_stats.a"
  "libfedcal_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
