# Empty dependencies file for fedcal_stats.
# This may be replaced when dependencies are built.
