file(REMOVE_RECURSE
  "libfedcal_engine.a"
)
