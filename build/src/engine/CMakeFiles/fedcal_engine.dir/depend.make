# Empty dependencies file for fedcal_engine.
# This may be replaced when dependencies are built.
