file(REMOVE_RECURSE
  "CMakeFiles/fedcal_engine.dir/executor.cc.o"
  "CMakeFiles/fedcal_engine.dir/executor.cc.o.d"
  "CMakeFiles/fedcal_engine.dir/plan.cc.o"
  "CMakeFiles/fedcal_engine.dir/plan.cc.o.d"
  "libfedcal_engine.a"
  "libfedcal_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
