# Empty dependencies file for fedcal_workload.
# This may be replaced when dependencies are built.
