file(REMOVE_RECURSE
  "CMakeFiles/fedcal_workload.dir/runner.cc.o"
  "CMakeFiles/fedcal_workload.dir/runner.cc.o.d"
  "CMakeFiles/fedcal_workload.dir/scenario.cc.o"
  "CMakeFiles/fedcal_workload.dir/scenario.cc.o.d"
  "CMakeFiles/fedcal_workload.dir/update_driver.cc.o"
  "CMakeFiles/fedcal_workload.dir/update_driver.cc.o.d"
  "libfedcal_workload.a"
  "libfedcal_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
