file(REMOVE_RECURSE
  "libfedcal_workload.a"
)
