file(REMOVE_RECURSE
  "CMakeFiles/fedcal_server.dir/remote_server.cc.o"
  "CMakeFiles/fedcal_server.dir/remote_server.cc.o.d"
  "libfedcal_server.a"
  "libfedcal_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
