# Empty dependencies file for fedcal_server.
# This may be replaced when dependencies are built.
