file(REMOVE_RECURSE
  "libfedcal_server.a"
)
