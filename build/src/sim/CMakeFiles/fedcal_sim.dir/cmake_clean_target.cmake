file(REMOVE_RECURSE
  "libfedcal_sim.a"
)
