file(REMOVE_RECURSE
  "CMakeFiles/fedcal_sim.dir/simulator.cc.o"
  "CMakeFiles/fedcal_sim.dir/simulator.cc.o.d"
  "libfedcal_sim.a"
  "libfedcal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
