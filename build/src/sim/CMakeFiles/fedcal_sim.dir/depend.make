# Empty dependencies file for fedcal_sim.
# This may be replaced when dependencies are built.
