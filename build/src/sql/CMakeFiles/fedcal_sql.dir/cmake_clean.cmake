file(REMOVE_RECURSE
  "CMakeFiles/fedcal_sql.dir/ast.cc.o"
  "CMakeFiles/fedcal_sql.dir/ast.cc.o.d"
  "CMakeFiles/fedcal_sql.dir/binder.cc.o"
  "CMakeFiles/fedcal_sql.dir/binder.cc.o.d"
  "CMakeFiles/fedcal_sql.dir/lexer.cc.o"
  "CMakeFiles/fedcal_sql.dir/lexer.cc.o.d"
  "CMakeFiles/fedcal_sql.dir/parser.cc.o"
  "CMakeFiles/fedcal_sql.dir/parser.cc.o.d"
  "libfedcal_sql.a"
  "libfedcal_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedcal_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
