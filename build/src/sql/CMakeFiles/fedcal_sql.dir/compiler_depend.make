# Empty compiler generated dependencies file for fedcal_sql.
# This may be replaced when dependencies are built.
