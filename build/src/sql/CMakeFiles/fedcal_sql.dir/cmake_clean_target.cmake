file(REMOVE_RECURSE
  "libfedcal_sql.a"
)
