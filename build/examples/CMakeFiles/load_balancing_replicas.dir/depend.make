# Empty dependencies file for load_balancing_replicas.
# This may be replaced when dependencies are built.
