file(REMOVE_RECURSE
  "CMakeFiles/load_balancing_replicas.dir/load_balancing_replicas.cpp.o"
  "CMakeFiles/load_balancing_replicas.dir/load_balancing_replicas.cpp.o.d"
  "load_balancing_replicas"
  "load_balancing_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancing_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
