# Empty compiler generated dependencies file for fedql_shell.
# This may be replaced when dependencies are built.
