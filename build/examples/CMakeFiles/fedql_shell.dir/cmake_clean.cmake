file(REMOVE_RECURSE
  "CMakeFiles/fedql_shell.dir/fedql_shell.cpp.o"
  "CMakeFiles/fedql_shell.dir/fedql_shell.cpp.o.d"
  "fedql_shell"
  "fedql_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedql_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
