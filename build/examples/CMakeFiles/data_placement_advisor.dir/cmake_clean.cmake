file(REMOVE_RECURSE
  "CMakeFiles/data_placement_advisor.dir/data_placement_advisor.cpp.o"
  "CMakeFiles/data_placement_advisor.dir/data_placement_advisor.cpp.o.d"
  "data_placement_advisor"
  "data_placement_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_placement_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
