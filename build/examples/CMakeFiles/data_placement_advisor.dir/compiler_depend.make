# Empty compiler generated dependencies file for data_placement_advisor.
# This may be replaced when dependencies are built.
