# Empty dependencies file for adaptive_routing.
# This may be replaced when dependencies are built.
