file(REMOVE_RECURSE
  "CMakeFiles/adaptive_routing.dir/adaptive_routing.cpp.o"
  "CMakeFiles/adaptive_routing.dir/adaptive_routing.cpp.o.d"
  "adaptive_routing"
  "adaptive_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
