file(REMOVE_RECURSE
  "CMakeFiles/availability_failover.dir/availability_failover.cpp.o"
  "CMakeFiles/availability_failover.dir/availability_failover.cpp.o.d"
  "availability_failover"
  "availability_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
