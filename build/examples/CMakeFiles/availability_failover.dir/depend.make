# Empty dependencies file for availability_failover.
# This may be replaced when dependencies are built.
