file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_qcc_vs_fixed1.dir/bench_fig10_qcc_vs_fixed1.cc.o"
  "CMakeFiles/bench_fig10_qcc_vs_fixed1.dir/bench_fig10_qcc_vs_fixed1.cc.o.d"
  "bench_fig10_qcc_vs_fixed1"
  "bench_fig10_qcc_vs_fixed1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_qcc_vs_fixed1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
