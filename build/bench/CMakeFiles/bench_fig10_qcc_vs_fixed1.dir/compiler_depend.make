# Empty compiler generated dependencies file for bench_fig10_qcc_vs_fixed1.
# This may be replaced when dependencies are built.
