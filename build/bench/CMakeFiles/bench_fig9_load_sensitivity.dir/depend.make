# Empty dependencies file for bench_fig9_load_sensitivity.
# This may be replaced when dependencies are built.
