file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qcc.dir/bench_ablation_qcc.cc.o"
  "CMakeFiles/bench_ablation_qcc.dir/bench_ablation_qcc.cc.o.d"
  "bench_ablation_qcc"
  "bench_ablation_qcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
