# Empty dependencies file for bench_ablation_qcc.
# This may be replaced when dependencies are built.
