file(REMOVE_RECURSE
  "CMakeFiles/bench_network_aware.dir/bench_network_aware.cc.o"
  "CMakeFiles/bench_network_aware.dir/bench_network_aware.cc.o.d"
  "bench_network_aware"
  "bench_network_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
