# Empty compiler generated dependencies file for bench_network_aware.
# This may be replaced when dependencies are built.
