# Empty compiler generated dependencies file for bench_sec4_load_balance.
# This may be replaced when dependencies are built.
