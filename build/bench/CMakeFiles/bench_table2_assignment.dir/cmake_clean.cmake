file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_assignment.dir/bench_table2_assignment.cc.o"
  "CMakeFiles/bench_table2_assignment.dir/bench_table2_assignment.cc.o.d"
  "bench_table2_assignment"
  "bench_table2_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
