# Empty dependencies file for bench_micro_qcc.
# This may be replaced when dependencies are built.
