file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_qcc.dir/bench_micro_qcc.cc.o"
  "CMakeFiles/bench_micro_qcc.dir/bench_micro_qcc.cc.o.d"
  "bench_micro_qcc"
  "bench_micro_qcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_qcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
