# Empty dependencies file for bench_fig11_qcc_vs_fixed2.
# This may be replaced when dependencies are built.
