file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_qcc_vs_fixed2.dir/bench_fig11_qcc_vs_fixed2.cc.o"
  "CMakeFiles/bench_fig11_qcc_vs_fixed2.dir/bench_fig11_qcc_vs_fixed2.cc.o.d"
  "bench_fig11_qcc_vs_fixed2"
  "bench_fig11_qcc_vs_fixed2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_qcc_vs_fixed2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
