file(REMOVE_RECURSE
  "CMakeFiles/load_balancer_test.dir/core/load_balancer_test.cc.o"
  "CMakeFiles/load_balancer_test.dir/core/load_balancer_test.cc.o.d"
  "load_balancer_test"
  "load_balancer_test.pdb"
  "load_balancer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
