# Empty dependencies file for decomposer_test.
# This may be replaced when dependencies are built.
