file(REMOVE_RECURSE
  "CMakeFiles/decomposer_test.dir/federation/decomposer_test.cc.o"
  "CMakeFiles/decomposer_test.dir/federation/decomposer_test.cc.o.d"
  "decomposer_test"
  "decomposer_test.pdb"
  "decomposer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomposer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
