file(REMOVE_RECURSE
  "CMakeFiles/meta_wrapper_test.dir/metawrapper/meta_wrapper_test.cc.o"
  "CMakeFiles/meta_wrapper_test.dir/metawrapper/meta_wrapper_test.cc.o.d"
  "meta_wrapper_test"
  "meta_wrapper_test.pdb"
  "meta_wrapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
