# Empty dependencies file for meta_wrapper_test.
# This may be replaced when dependencies are built.
