# Empty compiler generated dependencies file for calibration_store_test.
# This may be replaced when dependencies are built.
