file(REMOVE_RECURSE
  "CMakeFiles/calibration_store_test.dir/core/calibration_store_test.cc.o"
  "CMakeFiles/calibration_store_test.dir/core/calibration_store_test.cc.o.d"
  "calibration_store_test"
  "calibration_store_test.pdb"
  "calibration_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
