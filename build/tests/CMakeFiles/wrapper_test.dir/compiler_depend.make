# Empty compiler generated dependencies file for wrapper_test.
# This may be replaced when dependencies are built.
