file(REMOVE_RECURSE
  "CMakeFiles/wrapper_test.dir/wrapper/wrapper_test.cc.o"
  "CMakeFiles/wrapper_test.dir/wrapper/wrapper_test.cc.o.d"
  "wrapper_test"
  "wrapper_test.pdb"
  "wrapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
