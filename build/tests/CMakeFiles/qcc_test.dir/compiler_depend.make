# Empty compiler generated dependencies file for qcc_test.
# This may be replaced when dependencies are built.
