file(REMOVE_RECURSE
  "CMakeFiles/qcc_test.dir/core/qcc_test.cc.o"
  "CMakeFiles/qcc_test.dir/core/qcc_test.cc.o.d"
  "qcc_test"
  "qcc_test.pdb"
  "qcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
