# Empty compiler generated dependencies file for integrator_edge_test.
# This may be replaced when dependencies are built.
