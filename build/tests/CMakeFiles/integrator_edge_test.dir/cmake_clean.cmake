file(REMOVE_RECURSE
  "CMakeFiles/integrator_edge_test.dir/federation/integrator_edge_test.cc.o"
  "CMakeFiles/integrator_edge_test.dir/federation/integrator_edge_test.cc.o.d"
  "integrator_edge_test"
  "integrator_edge_test.pdb"
  "integrator_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
