# Empty compiler generated dependencies file for global_optimizer_test.
# This may be replaced when dependencies are built.
