file(REMOVE_RECURSE
  "CMakeFiles/global_optimizer_test.dir/federation/global_optimizer_test.cc.o"
  "CMakeFiles/global_optimizer_test.dir/federation/global_optimizer_test.cc.o.d"
  "global_optimizer_test"
  "global_optimizer_test.pdb"
  "global_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
