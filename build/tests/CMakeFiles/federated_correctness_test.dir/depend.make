# Empty dependencies file for federated_correctness_test.
# This may be replaced when dependencies are built.
