file(REMOVE_RECURSE
  "CMakeFiles/federated_correctness_test.dir/federation/federated_correctness_test.cc.o"
  "CMakeFiles/federated_correctness_test.dir/federation/federated_correctness_test.cc.o.d"
  "federated_correctness_test"
  "federated_correctness_test.pdb"
  "federated_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
