file(REMOVE_RECURSE
  "CMakeFiles/join_property_test.dir/engine/join_property_test.cc.o"
  "CMakeFiles/join_property_test.dir/engine/join_property_test.cc.o.d"
  "join_property_test"
  "join_property_test.pdb"
  "join_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
