# Empty dependencies file for join_property_test.
# This may be replaced when dependencies are built.
