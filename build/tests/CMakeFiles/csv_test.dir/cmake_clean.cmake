file(REMOVE_RECURSE
  "CMakeFiles/csv_test.dir/storage/csv_test.cc.o"
  "CMakeFiles/csv_test.dir/storage/csv_test.cc.o.d"
  "csv_test"
  "csv_test.pdb"
  "csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
