# Empty dependencies file for extended_sql_test.
# This may be replaced when dependencies are built.
