file(REMOVE_RECURSE
  "CMakeFiles/extended_sql_test.dir/sql/extended_sql_test.cc.o"
  "CMakeFiles/extended_sql_test.dir/sql/extended_sql_test.cc.o.d"
  "extended_sql_test"
  "extended_sql_test.pdb"
  "extended_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
