# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table_stats_test.
