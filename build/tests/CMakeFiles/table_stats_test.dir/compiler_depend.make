# Empty compiler generated dependencies file for table_stats_test.
# This may be replaced when dependencies are built.
