file(REMOVE_RECURSE
  "CMakeFiles/table_stats_test.dir/stats/table_stats_test.cc.o"
  "CMakeFiles/table_stats_test.dir/stats/table_stats_test.cc.o.d"
  "table_stats_test"
  "table_stats_test.pdb"
  "table_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
