# Empty dependencies file for bound_expr_test.
# This may be replaced when dependencies are built.
