
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/expr/bound_expr_test.cc" "tests/CMakeFiles/bound_expr_test.dir/expr/bound_expr_test.cc.o" "gcc" "tests/CMakeFiles/bound_expr_test.dir/expr/bound_expr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/fedcal_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/fedcal_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/fedcal_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/fedcal_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fedcal_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fedcal_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fedcal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
