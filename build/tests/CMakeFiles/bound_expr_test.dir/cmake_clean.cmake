file(REMOVE_RECURSE
  "CMakeFiles/bound_expr_test.dir/expr/bound_expr_test.cc.o"
  "CMakeFiles/bound_expr_test.dir/expr/bound_expr_test.cc.o.d"
  "bound_expr_test"
  "bound_expr_test.pdb"
  "bound_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bound_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
