# Empty compiler generated dependencies file for global_catalog_test.
# This may be replaced when dependencies are built.
