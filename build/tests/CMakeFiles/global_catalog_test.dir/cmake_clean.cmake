file(REMOVE_RECURSE
  "CMakeFiles/global_catalog_test.dir/catalog/global_catalog_test.cc.o"
  "CMakeFiles/global_catalog_test.dir/catalog/global_catalog_test.cc.o.d"
  "global_catalog_test"
  "global_catalog_test.pdb"
  "global_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
