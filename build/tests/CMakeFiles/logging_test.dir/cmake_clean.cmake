file(REMOVE_RECURSE
  "CMakeFiles/logging_test.dir/common/logging_test.cc.o"
  "CMakeFiles/logging_test.dir/common/logging_test.cc.o.d"
  "logging_test"
  "logging_test.pdb"
  "logging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
