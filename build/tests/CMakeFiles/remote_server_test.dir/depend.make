# Empty dependencies file for remote_server_test.
# This may be replaced when dependencies are built.
