file(REMOVE_RECURSE
  "CMakeFiles/remote_server_test.dir/server/remote_server_test.cc.o"
  "CMakeFiles/remote_server_test.dir/server/remote_server_test.cc.o.d"
  "remote_server_test"
  "remote_server_test.pdb"
  "remote_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
