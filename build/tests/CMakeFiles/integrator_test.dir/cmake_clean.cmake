file(REMOVE_RECURSE
  "CMakeFiles/integrator_test.dir/federation/integrator_test.cc.o"
  "CMakeFiles/integrator_test.dir/federation/integrator_test.cc.o.d"
  "integrator_test"
  "integrator_test.pdb"
  "integrator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
