# Empty dependencies file for availability_test.
# This may be replaced when dependencies are built.
