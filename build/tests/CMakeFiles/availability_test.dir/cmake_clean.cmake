file(REMOVE_RECURSE
  "CMakeFiles/availability_test.dir/core/availability_test.cc.o"
  "CMakeFiles/availability_test.dir/core/availability_test.cc.o.d"
  "availability_test"
  "availability_test.pdb"
  "availability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/availability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
