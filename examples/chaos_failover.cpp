// Deadline-driven failover out of a fail-slow fault (chaos harness demo).
//
// A declarative fault schedule — parsed from the same text format the
// harness accepts from files — browns out the most powerful server S3:
// its background load spikes and its network path congests. No hard error
// is ever returned, so the seed's error-triggered failover never fires
// and a query routed to S3 simply crawls.
//
// With the fault-tolerance layer on, the per-fragment deadline expires,
// the straggling fragment is cancelled (releasing its worker at S3), and
// the query fails over to a healthy-but-slower replica, finishing in a
// small multiple of its normal latency instead of the full stall.
//
// A second schedule goes further: a hard outage takes S3 down while a
// query is already executing there, with the retry budget too tight for
// a same-plan retry. Without mid-query re-routing the victim dies on
// "retry budget exhausted"; with it, the integrator spends a switch and
// finishes the remainder on a surviving replica.
//
//   ./build/examples/chaos_failover
#include <cstdio>

#include "obs/export.h"
#include "sim/fault_injector.h"
#include "workload/scenario.h"

using namespace fedcal;  // NOLINT

namespace {

// S3 is the least load-sensitive server in the testbed (its I/O path
// barely degrades under load), so the schedule pairs the load spike with
// congestion on S3's network path: a classic fail-slow brownout. The
// congestion follows the load spike so the fragment reaches S3 quickly,
// crawls through execution there, and then faces a choked reply path.
constexpr const char* kChaosScript = R"(# chaos: S3 browns out 50 ms in
at 0.05 brownout S3 0.98
at 0.2 congest S3 2000 4000
)";

// Hard mid-query outage: by t=0.05 the QT1 fragment is already running on
// S3; the outage aborts it in flight and rejects resubmission until the
// revert at t=0.55.
constexpr const char* kOutageScript = R"(# chaos: S3 drops mid-query
at 0.05 outage S3 for 0.5
)";

ScenarioConfig DemoConfig() {
  ScenarioConfig cfg;
  cfg.large_rows = 20'000;
  cfg.small_rows = 1'000;
  return cfg;
}

Result<QueryOutcome> Drive(Scenario* sc, const std::string& sql) {
  auto compiled = sc->integrator().Compile(sql);
  if (!compiled.ok()) return compiled.status();
  Result<QueryOutcome> outcome = Status::Internal("never completed");
  bool done = false;
  sc->integrator().Execute(*compiled, [&](Result<QueryOutcome> r) {
    outcome = std::move(r);
    done = true;
  });
  while (!done && sc->sim().Step()) {
  }
  return outcome;
}

void Report(const char* label, const Result<QueryOutcome>& outcome) {
  if (!outcome.ok()) {
    std::printf("%-32s FAILED: %s\n", label,
                outcome.status().ToString().c_str());
    return;
  }
  std::printf("%-32s -> %-3s %8.3f s   timeouts=%zu retries=%zu "
              "reroutes=%zu\n",
              label, outcome->executed_plan.server_set.front().c_str(),
              outcome->total_response_seconds, outcome->timeouts,
              outcome->retries, outcome->reroutes);
}

/// One experiment phase on a fresh testbed: optionally arm the chaos
/// schedule, let it engage, then run QT1 and report.
void RunPhase(const char* label, const FaultSchedule* chaos, bool layer_on,
              bool print_injector_state = false) {
  Scenario sc(DemoConfig());
  if (layer_on) {
    FaultToleranceConfig& ft = sc.integrator().mutable_config().fault;
    ft.enable_deadlines = true;
    ft.deadline_multiplier = 1.2;
    ft.deadline_floor_s = 0.05;
  }
  if (chaos != nullptr) {
    if (Status s = sc.fault_injector().Arm(*chaos); !s.ok()) {
      std::printf("arm failed: %s\n", s.ToString().c_str());
      return;
    }
    // Let the scheduled faults fire so the query below is submitted with
    // the brownout in full swing.
    sc.sim().RunUntil(0.1);
  }
  Report(label, Drive(&sc, sc.MakeQueryInstance(QueryType::kQT1, 0)));
  if (print_injector_state) {
    std::printf("\ninjector log:\n");
    for (const auto& line : sc.fault_injector().log()) {
      std::printf("  %s\n", line.c_str());
    }
    std::printf("S3 fragments cancelled at the server: %zu\n",
                sc.server("S3").fragments_cancelled());
  }
}

/// Mid-query outage phase: the query is submitted healthy and S3 dies
/// under it. The retry budget is one attempt, so survival hinges on the
/// re-routing controller spending a switch on a surviving replica plan.
void RunOutagePhase(const char* label, const FaultSchedule& chaos,
                    bool reroute_on) {
  Scenario sc(DemoConfig());
  FaultToleranceConfig& ft = sc.integrator().mutable_config().fault;
  ft.enable_deadlines = true;
  ft.deadline_multiplier = 4.0;
  ft.deadline_floor_s = 0.1;
  ft.retry.max_attempts = 1;  // no second chance on the same plan
  sc.integrator().mutable_config().reroute.enable = reroute_on;
  if (Status s = sc.fault_injector().Arm(chaos); !s.ok()) {
    std::printf("arm failed: %s\n", s.ToString().c_str());
    return;
  }
  // Submit immediately: the outage fires while the fragment is in flight.
  auto outcome = Drive(&sc, sc.MakeQueryInstance(QueryType::kQT1, 0));
  Report(label, outcome);
  if (outcome.ok() && outcome->reroutes > 0) {
    std::printf("%s",
                obs::ReRouteChainText(sc.telemetry().recorder,
                                      outcome->query_id)
                    .c_str());
  }
}

}  // namespace

int main() {
  std::printf("fault schedule:\n%s\n", kChaosScript);
  auto schedule = FaultSchedule::Parse(kChaosScript);
  if (!schedule.ok()) {
    std::printf("parse failed: %s\n", schedule.status().ToString().c_str());
    return 1;
  }

  RunPhase("healthy, layer off", nullptr, false);
  RunPhase("brownout, layer off (stalls)", &*schedule, false);
  RunPhase("brownout, deadlines on", &*schedule, true,
           /*print_injector_state=*/true);

  std::printf("\nmid-query outage schedule:\n%s\n", kOutageScript);
  auto outage = FaultSchedule::Parse(kOutageScript);
  if (!outage.ok()) {
    std::printf("parse failed: %s\n", outage.status().ToString().c_str());
    return 1;
  }
  RunOutagePhase("outage, re-routing off", *outage, /*reroute_on=*/false);
  RunOutagePhase("outage, re-routing on", *outage, /*reroute_on=*/true);
  return 0;
}
