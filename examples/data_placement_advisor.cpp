// Data placement in conjunction with QCC (paper §7 future work).
//
// A federation where the hottest table lives on a single server while a
// second machine idles. QCC's meta-wrapper logs reveal where observed
// execution time actually goes; the ReplicaAdvisor mines them, recommends
// replicating the hot nickname onto the idle server, and applying the
// recommendation immediately widens the optimizer's choices — throughput
// under concurrency improves without touching a single query.
//
//   ./build/examples/data_placement_advisor
#include "sim/simulator.h"
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "common/string_util.h"
#include "core/qcc.h"
#include "core/replica_advisor.h"
#include "storage/datagen.h"

using namespace fedcal;  // NOLINT

namespace {

struct Fed {
  Simulator sim;
  Network network;
  GlobalCatalog catalog;
  std::map<std::string, std::unique_ptr<RemoteServer>> servers;
  std::vector<std::unique_ptr<RelationalWrapper>> wrappers;
  std::unique_ptr<MetaWrapper> mw;
  std::unique_ptr<Integrator> ii;
};

double RunBurst(Fed* fed, int n, int clients) {
  std::deque<std::string> queue;
  for (int i = 0; i < n; ++i) {
    queue.push_back(StringFormat(
        "SELECT k, COUNT(*) AS c, AVG(v) AS m FROM metrics "
        "WHERE v > %d GROUP BY k",
        i % 7));
  }
  size_t in_flight = 0;
  double sum = 0.0;
  int completed = 0;
  std::function<void()> pump = [&] {
    while (in_flight < static_cast<size_t>(clients) && !queue.empty()) {
      auto compiled = fed->ii->Compile(queue.front());
      queue.pop_front();
      if (!compiled.ok()) continue;
      ++in_flight;
      fed->ii->Execute(*compiled, [&](Result<QueryOutcome> r) {
        --in_flight;
        if (r.ok()) {
          sum += r->response_seconds;
          ++completed;
        }
        pump();
      });
    }
  };
  pump();
  while ((in_flight > 0 || !queue.empty()) && fed->sim.Step()) {
  }
  return completed ? sum / completed : 0.0;
}

}  // namespace

int main() {
  Fed fed;
  for (const std::string id : {"alpha", "beta"}) {
    ServerConfig cfg;
    cfg.id = id;
    cfg.cpu_speed = cfg.io_speed = 150'000;
    cfg.num_workers = 2;
    fed.servers[id] = std::make_unique<RemoteServer>(cfg, &fed.sim, Rng(1));
    fed.network.AddLink(id, LinkConfig{});
    fed.catalog.SetServerProfile(ServerProfile{id, 150'000, 0.005,
                                               12.5e6});
  }

  Rng rng(9);
  TableGenSpec spec;
  spec.name = "metrics";
  spec.num_rows = 15'000;
  spec.columns = {{"k", DataType::kInt64}, {"v", DataType::kDouble}};
  spec.generators = {ColumnGenSpec::UniformInt(0, 19),
                     ColumnGenSpec::UniformDouble(0, 10)};
  TablePtr metrics = GenerateTable(spec, &rng).MoveValue();
  (void)fed.servers["alpha"]->AddTable(metrics);
  (void)fed.catalog.RegisterNickname("metrics", metrics->schema());
  (void)fed.catalog.AddLocation("metrics", "alpha", "metrics");
  fed.catalog.PutStats("metrics", TableStats::Compute(*metrics));

  fed.mw = std::make_unique<MetaWrapper>(&fed.catalog, &fed.network,
                                         &fed.sim);
  for (auto& [id, s] : fed.servers) {
    fed.wrappers.push_back(std::make_unique<RelationalWrapper>(s.get()));
    fed.mw->RegisterWrapper(fed.wrappers.back().get());
  }
  fed.ii = std::make_unique<Integrator>(&fed.catalog, fed.mw.get(),
                                        &fed.sim);

  QccConfig qcfg;
  qcfg.load_balance.level = LoadBalanceConfig::Level::kGlobal;
  QueryCostCalibrator qcc(&fed.sim, fed.mw.get(), qcfg);
  qcc.AttachTo(fed.ii.get());

  std::printf("phase 1: all 'metrics' traffic must go to alpha\n");
  const double before = RunBurst(&fed, 24, 4);
  std::printf("  mean response with a single replica: %.4f s\n\n", before);

  ReplicaAdvisor advisor(&fed.catalog, fed.mw.get());
  auto recs = advisor.Analyze();
  if (recs.empty()) {
    std::printf("advisor produced no recommendation (unexpected)\n");
    return 1;
  }
  std::printf("advisor recommendation:\n  %s\n", recs[0].rationale.c_str());
  std::printf("  -> replicate '%s' from %s to %s\n\n",
              recs[0].nickname.c_str(), recs[0].source_server.c_str(),
              recs[0].target_server.c_str());
  if (Status st = advisor.Apply(recs[0]); !st.ok()) {
    std::printf("apply failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("phase 2: same burst with the new replica + round-robin\n");
  const double after = RunBurst(&fed, 24, 4);
  std::printf("  mean response with two replicas:     %.4f s\n", after);
  std::printf("\nimprovement: %.1f%%\n", (before - after) / before * 100.0);
  return after < before ? 0 : 1;
}
