// Interactive federated SQL shell over the §5 experiment testbed.
//
//   ./build/examples/fedql_shell
//
// Type SQL against the nicknames `employee`, `sales`, `department`
// (replicated across servers S1, S2, S3), or one of the backslash
// commands:
//
//   \tables            list nicknames and replica locations
//   \servers           server status, load and calibration factors
//   \load <srv> <f>    set background load on a server (0..0.99)
//   \down <srv>        take a server down        \up <srv>  bring it back
//   \explain [id]      flight-recorder routing decision (all candidate
//                      plans + rejection reasons), plus the mid-query
//                      re-route chain when the query was re-evaluated in
//                      flight; defaults to the most recent query
//   \profile [id]      per-operator runtime profile (EXPLAIN ANALYZE):
//                      estimated vs observed rows, virtual/wall time,
//                      batches and arena bytes per fragment and for the
//                      integrator merge; defaults to the last query
//   \accuracy          cost-model accuracy scoreboard: rolling cardinality
//                      q-error per (server, operator) and per plan shape
//   \timeline <srv>    a server's calibration/reliability/availability/
//                      breaker time-series with drift events
//   \stats             live telemetry metrics snapshot (counters, gauges,
//                      latency histograms with p50/p95/p99)
//   \trace             span tree of the last query's lifecycle trace
//   \cache             prepared-plan cache: entries, hit rate, routing
//                      epoch and the last invalidation reason
//   \health            single-screen fleet health dashboard (fedtop)
//   \sched             serving scheduler panel: dispatch lag, exclusion
//                      waits, worker busy/idle (serving mode only)
//   \contention        per-site lock wait/hold times and contention rates
//   \alerts            active and recently resolved SLO/rule alerts
//   \events [n]        last n structured health events (default 20)
//   \qcc on|off        attach / detach the query cost calibrator
//   \mode [m [n]]      show or switch execution mode (sim | serving [n]);
//                      switching rebuilds the federation
//   \help              this list            \quit  exit
#include <cstdio>
#include <memory>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/profile_export.h"
#include "obs/snapshot.h"
#include "workload/scenario.h"

using namespace fedcal;  // NOLINT

namespace {

void PrintCommandList() {
  std::printf(
      "  query:\n"
      "    \\tables            list nicknames and replica locations\n"
      "    \\explain [id]      routing decision: candidate plans, "
      "rejection reasons,\n"
      "                       consulted server state, mid-query re-route "
      "chain\n"
      "                       (default: last query)\n"
      "    \\profile [id]      per-operator runtime profile: est vs "
      "observed rows,\n"
      "                       virtual/wall time, batches, arena bytes "
      "(default:\n"
      "                       last query)\n"
      "    \\trace             span tree of the last query\n"
      "  observe:\n"
      "    \\servers           server status, load and calibration "
      "factors\n"
      "    \\timeline <srv>    calibration/reliability/availability/"
      "breaker series\n"
      "    \\stats             telemetry metrics snapshot\n"
      "    \\accuracy          cost-model accuracy scoreboard: rolling "
      "cardinality\n"
      "                       q-error per (server, operator) and per plan "
      "shape\n"
      "  cache:\n"
      "    \\cache             prepared-plan cache stats, routing epoch, "
      "last invalidation\n"
      "  health:\n"
      "    \\health            fleet health dashboard (grades, alerts, "
      "events)\n"
      "    \\sched             scheduler panel: dispatch lag, exclusion "
      "waits,\n"
      "                       worker utilization (serving mode only)\n"
      "    \\contention        per-site lock wait/hold times and "
      "contention rates\n"
      "    \\alerts            active and recently resolved alerts\n"
      "    \\events [n]        last n structured events (default 20)\n"
      "  control:\n"
      "    \\load <srv> <f>    set background load on a server (0..0.99)\n"
      "    \\down <srv>        take a server down\n"
      "    \\up <srv>          bring a server back\n"
      "    \\qcc on|off        attach / detach the query cost calibrator\n"
      "    \\mode [m [n]]      show or switch execution mode: sim, or\n"
      "                       serving with n worker threads (rebuilds the\n"
      "                       federation; calibration starts fresh)\n"
      "    \\help              this list\n"
      "    \\quit              exit\n");
}

void PrintTable(const Table& t, size_t max_rows = 20) {
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    std::printf("%-18s", t.schema().column(c).name.c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < t.schema().num_columns(); ++c) {
    std::printf("%-18s", "------");
  }
  std::printf("\n");
  const size_t n = std::min(max_rows, t.num_rows());
  for (size_t r = 0; r < n; ++r) {
    for (const Value& v : t.row(r)) {
      std::printf("%-18s", v.ToString().c_str());
    }
    std::printf("\n");
  }
  if (t.num_rows() > n) {
    std::printf("... (%zu more rows)\n", t.num_rows() - n);
  }
  std::printf("(%zu rows)\n", t.num_rows());
}

}  // namespace

int main() {
  ScenarioConfig cfg;
  cfg.large_rows = 20'000;
  cfg.small_rows = 1'000;
  // The shell always profiles: \profile and \accuracy should work on the
  // very first query, and the interactive overhead is negligible.
  cfg.profile = true;
  std::printf("building federation (3 servers, %zu-row large tables)...\n",
              cfg.large_rows);
  auto sc = std::make_unique<Scenario>(cfg);
  bool qcc_attached = true;
  sc->qcc().AttachTo(&sc->integrator());
  uint64_t last_query_id = 0;

  // \mode rebuilds the federation on the requested execution context —
  // mode is fixed at Scenario construction, so calibration state and
  // telemetry start fresh after a switch.
  auto rebuild = [&](ExecMode mode, int workers) {
    cfg.exec_mode = mode;
    cfg.serving_workers = workers;
    sc.reset();  // joins serving threads before the rebuild
    sc = std::make_unique<Scenario>(cfg);
    sc->qcc().AttachTo(&sc->integrator());
    qcc_attached = true;
    last_query_id = 0;
    std::printf("  rebuilt federation in %s mode (%d worker%s)\n",
                ExecModeName(mode), workers, workers == 1 ? "" : "s");
  };

  std::printf(
      "fedql> ready. nicknames: employee, sales, department. "
      "\\help for commands, \\quit to exit.\n");

  std::string line;
  while (true) {
    std::printf("fedql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line[0] == '\\') {
      std::istringstream iss(line.substr(1));
      std::string cmd;
      iss >> cmd;
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "tables") {
        for (const auto& nickname : sc->catalog().nicknames()) {
          auto entry = sc->catalog().Lookup(nickname);
          std::printf("  %-12s", nickname.c_str());
          for (const auto& loc : (*entry)->locations) {
            std::printf(" %s:%s", loc.server_id.c_str(),
                        loc.remote_table.c_str());
          }
          std::printf("\n");
        }
      } else if (cmd == "servers") {
        for (const auto& sid : sc->server_ids()) {
          const RemoteServer& s = sc->server(sid);
          std::printf(
              "  %-4s %-5s load=%.2f factor=%.2f busy=%d queued=%zu "
              "done=%zu\n",
              sid.c_str(), s.available() ? "up" : "DOWN",
              s.background_load(),
              sc->qcc().store().ServerFactor(sid), s.busy_workers(),
              s.queued_fragments(), s.fragments_completed());
        }
      } else if (cmd == "load") {
        std::string sid;
        double f = 0.0;
        if (iss >> sid >> f) {
          sc->server(sid).set_background_load(f);
          std::printf("  %s background load = %.2f\n", sid.c_str(), f);
        } else {
          std::printf("  usage: \\load <server> <fraction>\n");
        }
      } else if (cmd == "down" || cmd == "up") {
        std::string sid;
        if (iss >> sid) {
          sc->server(sid).SetAvailable(cmd == "up");
          sc->telemetry().events.Emit(
              cmd == "up" ? obs::EventType::kServerUp
                          : obs::EventType::kServerDown,
              cmd == "up" ? obs::EventSeverity::kInfo
                          : obs::EventSeverity::kError,
              sid, /*query_id=*/0,
              std::string("operator \\") + cmd + " from shell");
          std::printf("  %s is now %s\n", sid.c_str(),
                      cmd == "up" ? "up" : "down");
        }
      } else if (cmd == "explain") {
        // With an argument: that query id; without: the last query (or,
        // failing that, the most recent recorded decision).
        uint64_t target_id = last_query_id;
        if (!(iss >> target_id)) target_id = last_query_id;
        const obs::FlightRecorder& rec = sc->telemetry().recorder;
        const obs::DecisionRecord* d =
            target_id != 0 ? rec.Find(target_id) : rec.Latest();
        if (d != nullptr) {
          std::printf("%s", obs::ExplainText(*d).c_str());
          // Queries that were re-evaluated in flight get the mid-query
          // tail: trigger, gap vs hysteresis bar, verdict per evaluation.
          std::printf("%s",
                      obs::ReRouteChainText(rec, d->query_id).c_str());
        } else if (const ExplainEntry* e =
                       target_id != 0
                           ? sc->integrator().explain().Find(target_id)
                           : sc->integrator().explain().Latest()) {
          // No flight-recorder decision (QCC detached): fall back to the
          // explain table's winner-only view.
          std::printf("  (winner-only explain entry; attach qcc for full "
                      "decisions)\n");
          std::printf("  total estimated: %.4f s\n",
                      e->total_estimated_seconds);
          for (const auto& f : e->fragments) {
            std::printf("  [%s] est=%.4f cal=%.4f  %s\n",
                        f.server_id.c_str(), f.estimated_seconds,
                        f.calibrated_seconds, f.statement.c_str());
          }
          std::printf("  merge plan:\n%s\n", e->merge_plan_text.c_str());
        } else {
          std::printf("  no explained query yet\n");
        }
      } else if (cmd == "profile") {
        uint64_t target_id = last_query_id;
        if (!(iss >> target_id)) target_id = last_query_id;
        const obs::FlightRecorder& rec = sc->telemetry().recorder;
        const obs::DecisionRecord* d =
            target_id != 0 ? rec.Find(target_id) : rec.Latest();
        if (d == nullptr) {
          std::printf("  no profiled query yet\n");
        } else if (d->profile == nullptr) {
          std::printf("  query %llu recorded no operator profile\n",
                      static_cast<unsigned long long>(d->query_id));
        } else {
          std::printf("%s", obs::ProfileText(*d->profile).c_str());
        }
      } else if (cmd == "accuracy") {
        std::printf("%s",
                    obs::AccuracyText(sc->telemetry().recorder).c_str());
      } else if (cmd == "timeline") {
        std::string sid;
        if (iss >> sid) {
          std::printf("%s",
                      obs::TimelineText(sc->telemetry().recorder, sid)
                          .c_str());
        } else {
          std::printf("  usage: \\timeline <server>  (servers:");
          for (const auto& s : sc->server_ids()) {
            std::printf(" %s", s.c_str());
          }
          std::printf(")\n");
        }
      } else if (cmd == "help" || cmd == "h" || cmd == "?") {
        PrintCommandList();
      } else if (cmd == "stats") {
        std::printf("  mode: %s (%d worker%s), virtual t=%.3f s\n",
                    ExecModeName(sc->exec_mode()),
                    sc->ctx().worker_count(),
                    sc->ctx().worker_count() == 1 ? "" : "s",
                    sc->ctx().Now());
        const std::string text = sc->telemetry().metrics.ToText();
        std::printf("%s", text.empty() ? "  no metrics yet\n" : text.c_str());
      } else if (cmd == "trace") {
        if (last_query_id == 0) {
          std::printf("  no traced query yet\n");
        } else {
          std::printf("%s",
                      sc->telemetry().tracer.ToText(last_query_id).c_str());
        }
      } else if (cmd == "cache") {
        const PlanCache& cache = sc->integrator().plan_cache();
        const PlanCache::Stats& st = cache.stats();
        std::printf("  prepared-plan cache: %zu/%zu entries, routing epoch "
                    "%llu (%llu bumps)\n",
                    cache.size(), cache.capacity(),
                    static_cast<unsigned long long>(cache.epoch()),
                    static_cast<unsigned long long>(st.epoch_bumps));
        std::printf("  hits=%llu misses=%llu hit_rate=%.1f%% "
                    "invalidated=%llu evictions=%llu\n",
                    static_cast<unsigned long long>(st.hits),
                    static_cast<unsigned long long>(st.misses),
                    st.HitRate() * 100.0,
                    static_cast<unsigned long long>(st.invalidated),
                    static_cast<unsigned long long>(st.evictions));
        std::printf("  last invalidation: %s\n",
                    cache.last_invalidation_reason().empty()
                        ? "(none)"
                        : cache.last_invalidation_reason().c_str());
      } else if (cmd == "health") {
        const obs::HealthSnapshot snap = obs::BuildHealthSnapshot(
            sc->telemetry().health, sc->telemetry().recorder,
            sc->telemetry().events, sc->ctx().Now(), sc->server_ids());
        std::printf("%s", obs::FedtopText(snap).c_str());
      } else if (cmd == "sched") {
        // Same struct fedtop renders; prints its own "(serving mode
        // only)" note when the sched.* metrics are absent.
        std::printf(
            "%s",
            obs::SchedText(obs::BuildSchedulerPanel(sc->telemetry().metrics))
                .c_str());
      } else if (cmd == "contention") {
        std::printf("%s",
                    obs::ContentionText(obs::BuildLockPanels()).c_str());
      } else if (cmd == "alerts") {
        std::printf("%s", obs::AlertsText(sc->telemetry().health).c_str());
      } else if (cmd == "events") {
        size_t n = 20;
        iss >> n;
        std::printf("%s",
                    obs::EventsText(sc->telemetry().events, n).c_str());
      } else if (cmd == "mode") {
        std::string mode;
        if (iss >> mode) {
          if (mode == "serving") {
            int workers = 2;
            iss >> workers;
            if (workers < 1) workers = 1;
            rebuild(ExecMode::kServing, workers);
          } else if (mode == "sim") {
            rebuild(ExecMode::kSimulation, 1);
          } else {
            std::printf("  usage: \\mode [sim | serving [workers]]\n");
          }
        } else {
          std::printf("  mode: %s (%d worker%s)\n",
                      ExecModeName(sc->exec_mode()),
                      sc->ctx().worker_count(),
                      sc->ctx().worker_count() == 1 ? "" : "s");
        }
      } else if (cmd == "qcc") {
        std::string mode;
        iss >> mode;
        if (mode == "off" && qcc_attached) {
          sc->qcc().Detach(&sc->integrator());
          qcc_attached = false;
        } else if (mode == "on" && !qcc_attached) {
          sc->qcc().AttachTo(&sc->integrator());
          qcc_attached = true;
        }
        std::printf("  qcc is %s\n", qcc_attached ? "on" : "off");
      } else {
        std::printf("  unknown command: \\%s\n", cmd.c_str());
        PrintCommandList();
      }
      continue;
    }

    auto outcome = sc->integrator().RunSync(line);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      continue;
    }
    last_query_id = outcome->query_id;
    PrintTable(*outcome->table);
    std::string servers;
    for (const auto& s : outcome->executed_plan.server_set) {
      servers += servers.empty() ? s : "+" + s;
    }
    std::printf("executed on %s in %.4f simulated seconds%s\n",
                servers.c_str(), outcome->response_seconds,
                outcome->retries ? " (after failover)" : "");
  }
  std::printf("\nbye\n");
  return 0;
}
