// Adaptive query routing: the paper's core demonstration, end to end.
//
// A query type initially routes to the fastest server, S3. A heavy update
// load then hits S3; the static optimizer would keep going there, but QCC
// — purely from the gap between estimated and observed fragment costs —
// raises S3's calibration factor and the very same optimizer starts
// routing to an unloaded server. When the load clears, probe daemons pull
// the factor back down and routing returns to S3.
//
//   ./build/examples/adaptive_routing
#include <cstdio>

#include "obs/export.h"
#include "workload/runner.h"
#include "workload/scenario.h"

using namespace fedcal;  // NOLINT

namespace {

void ShowRouting(Scenario& sc, const char* moment) {
  std::printf("\n--- %s (t=%.1fs) ---\n", moment, sc.sim().Now());
  for (QueryType qt : AllQueryTypes()) {
    auto compiled = sc.integrator().Compile(sc.MakeQueryInstance(qt, 0));
    if (!compiled.ok()) continue;
    const auto& chosen = compiled->options[compiled->chosen_index];
    std::printf("  %s -> %s (calibrated est %.4f s)\n", QueryTypeName(qt),
                chosen.server_set.front().c_str(),
                chosen.total_calibrated_seconds);
  }
  auto& qcc = sc.qcc();
  std::printf("  calibration factors:");
  for (const auto& sid : sc.server_ids()) {
    std::printf("  %s=%.2f", sid.c_str(), qcc.store().ServerFactor(sid));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  ScenarioConfig cfg;
  cfg.large_rows = 10'000;
  cfg.small_rows = 800;
  Scenario sc(cfg);
  WorkloadRunner runner(&sc);

  QccConfig qcfg;
  qcfg.load_balance.level = LoadBalanceConfig::Level::kNone;
  auto& qcc = sc.qcc(qcfg);
  qcc.AttachTo(&sc.integrator());

  // Baseline: nothing loaded; a couple of passes give QCC observations.
  sc.ApplyPhase(1);
  runner.ExplorationPass();
  ShowRouting(sc, "baseline, all servers idle");

  // Heavy update load lands on S3 (the machine everything routed to).
  std::printf("\n>>> heavy update load hits S3\n");
  sc.server("S3").set_background_load(0.6);
  runner.ExplorationPass();  // QCC observes the new reality
  ShowRouting(sc, "S3 under heavy load");

  // The flight recorder explains the last routing decision: every
  // candidate plan with its calibrated cost and why the losers lost.
  const obs::DecisionRecord* decision = sc.telemetry().recorder.Latest();
  if (decision != nullptr) {
    std::printf("\n--- flight recorder: last routing decision ---\n%s",
                obs::ExplainText(*decision).c_str());
  }

  // Load clears; daemon probes + fresh observations pull routing back.
  std::printf("\n>>> load on S3 clears\n");
  sc.server("S3").set_background_load(0.0);
  runner.ExplorationPass();
  ShowRouting(sc, "S3 recovered");

  // How S3's calibration factor travelled through the whole episode —
  // the drift detector marks both the load spike and the recovery.
  std::printf("\n--- flight recorder: S3 calibration timeline ---\n%s",
              obs::TimelineText(sc.telemetry().recorder, "S3", 24).c_str());

  // The meta-wrapper logs show every estimate/observation pair QCC used.
  const auto& log = sc.meta_wrapper().runtime_log();
  std::printf("\nmeta-wrapper runtime log: %zu fragment executions "
              "recorded; last 3:\n",
              log.size());
  for (size_t i = log.size() >= 3 ? log.size() - 3 : 0; i < log.size();
       ++i) {
    std::printf("  [%s] estimated %.4f s, observed %.4f s (ratio %.2f)\n",
                log[i].server_id.c_str(),
                log[i].cost.raw_estimated_seconds,
                log[i].cost.observed_seconds, log[i].cost.ObservedRatio());
  }
  return 0;
}
