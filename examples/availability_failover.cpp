// Availability-aware routing (paper §3.3).
//
// A replicated nickname is served by two machines. The preferred one goes
// down mid-run: QCC detects the outage from the meta-wrapper error log,
// prices the server at infinity, and the optimizer routes every following
// query to the surviving replica — with the in-flight query failing over
// automatically. When the daemon probes see the server answering again, it
// rejoins the candidate set.
//
//   ./build/examples/availability_failover
#include "sim/simulator.h"
#include <cstdio>
#include <memory>

#include "core/qcc.h"
#include "storage/datagen.h"

using namespace fedcal;  // NOLINT

int main() {
  Simulator sim;
  Network network;
  GlobalCatalog catalog;

  // "fast" is preferred; "slow" is the fallback replica.
  RemoteServer fast(ServerConfig{.id = "fast", .cpu_speed = 300'000,
                                 .io_speed = 300'000},
                    &sim, Rng(1));
  RemoteServer slow(ServerConfig{.id = "slow", .cpu_speed = 100'000,
                                 .io_speed = 100'000},
                    &sim, Rng(2));
  network.AddLink("fast", LinkConfig{});
  network.AddLink("slow", LinkConfig{});
  catalog.SetServerProfile(ServerProfile{"fast", 300'000, 0.005, 12.5e6});
  catalog.SetServerProfile(ServerProfile{"slow", 100'000, 0.005, 12.5e6});

  Rng rng(3);
  TableGenSpec spec;
  spec.name = "events";
  spec.num_rows = 10'000;
  spec.columns = {{"eid", DataType::kInt64},
                  {"kind", DataType::kInt64},
                  {"value", DataType::kDouble}};
  spec.generators = {ColumnGenSpec::Serial(),
                     ColumnGenSpec::UniformInt(1, 10),
                     ColumnGenSpec::UniformDouble(0, 100)};
  TablePtr events = GenerateTable(spec, &rng).MoveValue();
  (void)fast.AddTable(events->CloneAs("events"));
  (void)slow.AddTable(events->CloneAs("events"));
  (void)catalog.RegisterNickname("events", events->schema());
  (void)catalog.AddLocation("events", "fast", "events");
  (void)catalog.AddLocation("events", "slow", "events");
  catalog.PutStats("events", TableStats::Compute(*events));

  RelationalWrapper fast_wrapper(&fast);
  RelationalWrapper slow_wrapper(&slow);
  MetaWrapper mw(&catalog, &network, &sim);
  mw.RegisterWrapper(&fast_wrapper);
  mw.RegisterWrapper(&slow_wrapper);
  Integrator ii(&catalog, &mw, &sim);

  QccConfig qcfg;
  qcfg.availability.probe_period_s = 2.0;
  QueryCostCalibrator qcc(&sim, &mw, qcfg);
  qcc.AttachTo(&ii);

  const char* sql =
      "SELECT kind, COUNT(*) AS n, AVG(value) AS avg_value FROM events "
      "GROUP BY kind";

  auto run = [&](const char* label) {
    auto outcome = ii.RunSync(sql);
    if (!outcome.ok()) {
      std::printf("%-28s FAILED: %s\n", label,
                  outcome.status().ToString().c_str());
      return;
    }
    std::printf("%-28s -> %-5s %.4f s%s   (fast %s)\n", label,
                outcome->executed_plan.server_set.front().c_str(),
                outcome->response_seconds,
                outcome->retries ? " [failover retry]" : "",
                qcc.availability().IsDown("fast") ? "DOWN" : "up");
  };

  run("both servers up");

  std::printf("\n>>> 'fast' crashes\n");
  fast.SetAvailable(false);
  // The next query is *compiled* before QCC knows about the outage; the
  // integrator fails over to the surviving replica at run time, and QCC
  // marks the server down from the error log.
  run("crash not yet detected");
  run("outage now known");

  std::printf("\n>>> 'fast' comes back; daemon probes re-admit it\n");
  fast.SetAvailable(true);
  sim.RunUntil(sim.Now() + 10.0);  // let a few probe cycles fire
  run("after recovery probes");

  std::printf("\nreliability bookkeeping: fast success rate %.2f, "
              "probe count %zu\n",
              qcc.reliability().SuccessRate("fast"),
              qcc.availability().ProbeCount("fast"));
  return 0;
}
