// Quickstart: stand up a two-server federation, register nicknames, and
// run federated SQL through the integrator.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include "sim/simulator.h"
#include <cstdio>
#include <memory>

#include "federation/integrator.h"
#include "storage/datagen.h"

using namespace fedcal;  // NOLINT

int main() {
  // 1. The substrate: a virtual clock everything shares, and a network.
  Simulator sim;
  Network network;
  network.AddLink("alpha", LinkConfig{.base_latency_s = 0.004});
  network.AddLink("beta", LinkConfig{.base_latency_s = 0.010});

  // 2. Two remote servers with real in-memory tables.
  RemoteServer alpha(ServerConfig{.id = "alpha", .cpu_speed = 200'000,
                                  .io_speed = 200'000},
                     &sim, Rng(1));
  RemoteServer beta(ServerConfig{.id = "beta", .cpu_speed = 120'000,
                                 .io_speed = 120'000},
                    &sim, Rng(2));

  Rng rng(7);
  TableGenSpec products;
  products.name = "products";
  products.num_rows = 5'000;
  products.columns = {{"pid", DataType::kInt64},
                      {"category", DataType::kInt64},
                      {"price", DataType::kDouble}};
  products.generators = {ColumnGenSpec::Serial(),
                         ColumnGenSpec::UniformInt(1, 20),
                         ColumnGenSpec::UniformDouble(1, 500)};
  TablePtr products_table = GenerateTable(products, &rng).MoveValue();

  TableGenSpec reviews;
  reviews.name = "reviews";
  reviews.num_rows = 20'000;
  reviews.columns = {{"rid", DataType::kInt64},
                     {"pid", DataType::kInt64},
                     {"stars", DataType::kInt64}};
  reviews.generators = {ColumnGenSpec::Serial(),
                        ColumnGenSpec::UniformInt(0, 4'999),
                        ColumnGenSpec::ZipfInt(1, 5, 1.3)};
  TablePtr reviews_table = GenerateTable(reviews, &rng).MoveValue();

  // products is replicated on both servers; reviews lives on beta only.
  (void)alpha.AddTable(products_table->CloneAs("products"));
  (void)beta.AddTable(products_table->CloneAs("products"));
  (void)beta.AddTable(reviews_table);

  // 3. The global catalog: nicknames, replica locations, cached stats and
  //    the admin's beliefs about each server.
  GlobalCatalog catalog;
  (void)catalog.RegisterNickname("products", products_table->schema());
  (void)catalog.AddLocation("products", "alpha", "products");
  (void)catalog.AddLocation("products", "beta", "products");
  catalog.PutStats("products", TableStats::Compute(*products_table));
  (void)catalog.RegisterNickname("reviews", reviews_table->schema());
  (void)catalog.AddLocation("reviews", "beta", "reviews");
  catalog.PutStats("reviews", TableStats::Compute(*reviews_table));
  catalog.SetServerProfile(ServerProfile{"alpha", 200'000, 0.004, 12.5e6});
  catalog.SetServerProfile(ServerProfile{"beta", 120'000, 0.010, 12.5e6});

  // 4. Wrappers + meta-wrapper + integrator.
  RelationalWrapper alpha_wrapper(&alpha);
  RelationalWrapper beta_wrapper(&beta);
  MetaWrapper mw(&catalog, &network, &sim);
  mw.RegisterWrapper(&alpha_wrapper);
  mw.RegisterWrapper(&beta_wrapper);
  Integrator ii(&catalog, &mw, &sim);

  // 5. Run federated SQL. The cross-server join decomposes into fragments.
  const char* sql =
      "SELECT p.category, COUNT(*) AS reviews, AVG(r.stars) AS avg_stars "
      "FROM products p JOIN reviews r ON r.pid = p.pid "
      "WHERE p.price > 250 GROUP BY p.category "
      "ORDER BY avg_stars DESC LIMIT 5";
  auto outcome = ii.RunSync(sql);
  if (!outcome.ok()) {
    std::printf("query failed: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %s\n\n", sql);
  std::printf("executed on servers: ");
  for (const auto& s : outcome->executed_plan.server_set) {
    std::printf("%s ", s.c_str());
  }
  std::printf("\nsimulated response time: %.4f s\n\n",
              outcome->response_seconds);

  const Table& result = *outcome->table;
  for (size_t c = 0; c < result.schema().num_columns(); ++c) {
    std::printf("%-14s", result.schema().column(c).name.c_str());
  }
  std::printf("\n");
  for (const Row& row : result.rows()) {
    for (const Value& v : row) std::printf("%-14s", v.ToString().c_str());
    std::printf("\n");
  }

  // 6. Peek at the explain table — the winner plan the optimizer stored.
  const ExplainEntry* entry = ii.explain().Find(outcome->query_id);
  std::printf("\nexplain: total estimated %.4f s, %zu fragment(s)\n",
              entry->total_estimated_seconds, entry->fragments.size());
  for (const auto& frag : entry->fragments) {
    std::printf("  [%s] %s (est %.4f s)\n", frag.server_id.c_str(),
                frag.statement.c_str(), frag.estimated_seconds);
  }
  return 0;
}
