// Load distribution across replicas (paper §4).
//
// Two origin servers S1/S2 plus replicas R1/R2 host the two halves of a
// cross-source join. With plain cost-based routing every instance of the
// query lands on the same (cheapest) pair of servers; with QCC's global
// round-robin the near-equivalent plans rotate across all four machines,
// and the what-if simulated federated system shows how the alternatives
// were derived with a handful of explain runs.
//
//   ./build/examples/load_balancing_replicas
#include "sim/simulator.h"
#include <cstdio>
#include <map>
#include <memory>

#include "common/string_util.h"
#include "core/qcc.h"
#include "storage/datagen.h"

using namespace fedcal;  // NOLINT

int main() {
  Simulator sim;
  Network network;
  GlobalCatalog catalog;
  std::map<std::string, std::unique_ptr<RemoteServer>> servers;
  for (const std::string id : {"S1", "R1", "S2", "R2"}) {
    ServerConfig scfg;
    scfg.id = id;
    scfg.cpu_speed = scfg.io_speed = 150'000;
    scfg.num_workers = 2;
    servers[id] = std::make_unique<RemoteServer>(scfg, &sim, Rng(5));
    network.AddLink(id, LinkConfig{.base_latency_s = 0.005});
    catalog.SetServerProfile(ServerProfile{id, 150'000, 0.005, 12.5e6});
  }

  Rng rng(11);
  TableGenSpec orders;
  orders.name = "orders";
  orders.num_rows = 12'000;
  orders.columns = {{"okey", DataType::kInt64},
                    {"ckey", DataType::kInt64},
                    {"total", DataType::kDouble}};
  orders.generators = {ColumnGenSpec::Serial(),
                       ColumnGenSpec::UniformInt(0, 1'999),
                       ColumnGenSpec::UniformDouble(0, 1'000)};
  TableGenSpec customer;
  customer.name = "customer";
  customer.num_rows = 2'000;
  customer.columns = {{"ckey", DataType::kInt64},
                      {"segment", DataType::kString}};
  customer.generators = {
      ColumnGenSpec::Serial(),
      ColumnGenSpec::StringPool({"retail", "corp", "gov"})};

  auto install = [&](const TableGenSpec& spec,
                     std::vector<std::string> hosts) {
    TablePtr t = GenerateTable(spec, &rng).MoveValue();
    (void)catalog.RegisterNickname(spec.name, t->schema());
    catalog.PutStats(spec.name, TableStats::Compute(*t));
    for (const auto& h : hosts) {
      (void)servers[h]->AddTable(t->CloneAs(spec.name));
      (void)catalog.AddLocation(spec.name, h, spec.name);
    }
  };
  install(orders, {"S1", "R1"});
  install(customer, {"S2", "R2"});

  MetaWrapper mw(&catalog, &network, &sim);
  std::vector<std::unique_ptr<RelationalWrapper>> wrappers;
  for (auto& [id, s] : servers) {
    wrappers.push_back(std::make_unique<RelationalWrapper>(s.get()));
    mw.RegisterWrapper(wrappers.back().get());
  }
  Integrator ii(&catalog, &mw, &sim);

  QccConfig qcfg;
  qcfg.load_balance.level = LoadBalanceConfig::Level::kGlobal;
  qcfg.load_balance.cost_tolerance = 0.2;
  qcfg.enable_availability_daemon = false;
  QueryCostCalibrator qcc(&sim, &mw, qcfg);
  qcc.AttachTo(&ii);

  auto q = [](int i) {
    return StringFormat(
        "SELECT c.segment, COUNT(*) AS n, SUM(o.total) AS revenue "
        "FROM orders o JOIN customer c ON o.ckey = c.ckey "
        "WHERE o.total > %d GROUP BY c.segment",
        100 + i);
  };

  // Derive the alternative global plans through the simulated federated
  // system (explain-mode runs over server subsets).
  auto alternatives = qcc.whatif().EnumerateAlternatives(q(0));
  std::printf("what-if enumeration: %zu explain runs -> %zu plans\n",
              alternatives->explain_runs, alternatives->plans.size());
  for (const auto& p : alternatives->plans) {
    std::printf("  %s\n", p.Describe().c_str());
  }

  // Fire twelve instances of the query and watch the rotation.
  std::printf("\nround-robin execution (tolerance 20%%):\n");
  std::map<std::string, int> sets;
  for (int i = 0; i < 12; ++i) {
    auto outcome = ii.RunSync(q(i));
    if (!outcome.ok()) continue;
    std::string joined;
    for (const auto& s : outcome->executed_plan.server_set) {
      joined += joined.empty() ? s : "+" + s;
    }
    ++sets[joined];
    std::printf("  query %2d -> %-8s (%.4f s)\n", i + 1, joined.c_str(),
                outcome->response_seconds);
  }
  std::printf("\nserver-set usage:\n");
  for (const auto& [set, n] : sets) {
    std::printf("  %-8s %d queries\n", set.c_str(), n);
  }
  return 0;
}
