#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_<name>.json output against the
committed baselines in bench/baselines/.

Every bench harness writes a machine-readable BENCH_<name>.json (see
bench/bench_util.h). The simulation harnesses are deterministic in virtual
time, so their metrics are compared with a tight relative tolerance. The
google-benchmark micro harnesses report wall-clock ns/op, which varies
across machines; those metrics are only required to exist, be positive,
and stay within a generous multiplier of the baseline.

Usage:
  tools/check_bench_regression.py --fresh-dir <dir> [--baseline-dir bench/baselines]
  tools/check_bench_regression.py --fresh-dir <dir> --update-baselines

Every baseline is checked even after the first failure, every violated
metric is listed, and the run ends with a per-bench PASS/FAIL summary
table. Exit code 0 when every bench matches its baseline, 1 otherwise.

--update-baselines copies every fresh BENCH_<name>.json over its
committed baseline (adding files for new benches) instead of comparing,
and refuses to accept output with failing shape checks. Use it after an
intentional perf-affecting change; see EXPERIMENTS.md.
"""

import argparse
import json
import math
import os
import shutil
import sys

# Relative tolerance for deterministic (virtual-time) metrics. Slack is
# intentional: legitimate PRs shift simulated latencies a little (a new
# telemetry sample, a changed probe schedule); the gate is after routing
# regressions, not byte equality.
DETERMINISTIC_REL_TOL = 0.15

# Deterministic metrics that must match *exactly* (counts of discrete
# events drifting at all means behaviour changed).
EXACT_FIELDS = {"queries"}

# Absolute slack for deterministic metrics whose baseline is ~0 (retries,
# timeouts, hedges on a healthy run): allow a handful before failing.
NEAR_ZERO_ABS_TOL = 2.0

# Wall-clock metrics (by label suffix): must exist and be positive;
# flagged only past a generous multiplier so a slower CI machine never
# trips it, while an accidentally quadratic hot path still does. Classes
# (documented in EXPERIMENTS.md):
#   /real_time_per_iter_s, /wall_s  -- elapsed wall time; fail if the
#       fresh value is more than WALL_CLOCK_MAX_RATIO times the baseline
#       (bigger is worse).
#   /throughput_qps -- wall-clock rate; fail if the fresh value drops
#       below baseline / WALL_CLOCK_MAX_RATIO (smaller is worse).
#   /ratio_x -- a ratio of two wall-clock rates from the *same* run
#       (machine speed largely cancels); positivity only, because the
#       bench's own named shape checks gate its threshold.
WALL_TIME_SUFFIXES = ("/real_time_per_iter_s", "/wall_s")
WALL_RATE_SUFFIXES = ("/throughput_qps",)
WALL_RATIO_SUFFIXES = ("/ratio_x",)
WALL_CLOCK_MAX_RATIO = 25.0


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def fields_of(workload):
    return {k: v for k, v in workload.items() if k != "label"}


def check_deterministic(bench, where, key, base, fresh, problems):
    if key in EXACT_FIELDS:
        if fresh != base:
            problems.append(
                f"{bench}: {where}.{key} = {fresh}, baseline {base} "
                f"(exact-match metric)")
        return
    if not math.isfinite(base) or not math.isfinite(fresh):
        if repr(base) != repr(fresh):
            problems.append(
                f"{bench}: {where}.{key} = {fresh}, baseline {base}")
        return
    if abs(base) < 1e-9:
        if abs(fresh) > NEAR_ZERO_ABS_TOL:
            problems.append(
                f"{bench}: {where}.{key} = {fresh}, baseline ~0 "
                f"(allowed +/-{NEAR_ZERO_ABS_TOL})")
        return
    rel = abs(fresh - base) / abs(base)
    if rel > DETERMINISTIC_REL_TOL:
        problems.append(
            f"{bench}: {where}.{key} = {fresh:.6g}, baseline {base:.6g} "
            f"({rel * 100.0:.1f}% off, tolerance "
            f"{DETERMINISTIC_REL_TOL * 100.0:.0f}%)")


def wall_clock_class(label):
    """Returns the wall-clock tolerance class for a scalar label, or None
    when the scalar is deterministic."""
    if label.endswith(WALL_TIME_SUFFIXES):
        return "time"
    if label.endswith(WALL_RATE_SUFFIXES):
        return "rate"
    if label.endswith(WALL_RATIO_SUFFIXES):
        return "ratio"
    return None


def check_wall_clock(bench, kind, label, base, fresh, problems):
    if fresh <= 0.0:
        problems.append(f"{bench}: scalar '{label}' = {fresh} (must be > 0)")
        return
    if kind == "time" and base > 0.0 and fresh > base * WALL_CLOCK_MAX_RATIO:
        problems.append(
            f"{bench}: scalar '{label}' = {fresh:.3g}s, baseline "
            f"{base:.3g}s (> {WALL_CLOCK_MAX_RATIO:.0f}x slower)")
    elif kind == "rate" and base > 0.0 and fresh < base / WALL_CLOCK_MAX_RATIO:
        problems.append(
            f"{bench}: scalar '{label}' = {fresh:.3g}/s, baseline "
            f"{base:.3g}/s (> {WALL_CLOCK_MAX_RATIO:.0f}x slower)")
    # kind == "ratio": positivity only; the bench's shape checks gate it.


def compare(bench, baseline, fresh, problems):
    # 1. Shape checks: every named check in the baseline must still exist
    # and pass. New checks in fresh output are fine (a growing suite).
    fresh_checks = {c["name"]: c["pass"] for c in fresh.get("checks", [])}
    for check in baseline.get("checks", []):
        name = check["name"]
        if name not in fresh_checks:
            problems.append(f"{bench}: shape check '{name}' disappeared")
        elif not fresh_checks[name]:
            problems.append(f"{bench}: shape check '{name}' now FAILS")
    if fresh.get("failed", 0) != 0:
        problems.append(f"{bench}: {fresh['failed']} shape check(s) failing")

    # 2. Workload metrics, matched by label.
    fresh_workloads = {w["label"]: w for w in fresh.get("workloads", [])}
    for workload in baseline.get("workloads", []):
        label = workload["label"]
        if label not in fresh_workloads:
            problems.append(f"{bench}: workload '{label}' disappeared")
            continue
        fresh_fields = fields_of(fresh_workloads[label])
        for key, base_value in fields_of(workload).items():
            if key not in fresh_fields:
                problems.append(
                    f"{bench}: workload '{label}' lost metric '{key}'")
                continue
            check_deterministic(bench, f"workload '{label}'", key,
                                base_value, fresh_fields[key], problems)

    # 3. Scalars, matched by label; wall-clock ones get the loose rule.
    fresh_scalars = {s["label"]: s["value"] for s in fresh.get("scalars", [])}
    for scalar in baseline.get("scalars", []):
        label, base_value = scalar["label"], scalar["value"]
        if label not in fresh_scalars:
            problems.append(f"{bench}: scalar '{label}' disappeared")
            continue
        fresh_value = fresh_scalars[label]
        kind = wall_clock_class(label)
        if kind is not None:
            check_wall_clock(bench, kind, label, base_value, fresh_value,
                             problems)
        else:
            check_deterministic(bench, "scalars", label, base_value,
                                fresh_value, problems)


def update_baselines(fresh_dir, baseline_dir):
    """Adopts every fresh BENCH_*.json as the new committed baseline."""
    fresh = sorted(
        f for f in os.listdir(fresh_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not fresh:
        print(f"no BENCH_*.json files under {fresh_dir}; run the benches "
              f"with FEDCAL_BENCH_JSON_DIR={fresh_dir} first")
        return 1
    problems = []
    for name in fresh:
        data = load(os.path.join(fresh_dir, name))
        if data.get("failed", 0) != 0:
            problems.append(
                f"{name}: {data['failed']} shape check(s) failing; fix the "
                f"bench (or the code) before adopting it as a baseline")
    if problems:
        for p in problems:
            print(f"  FAIL  {p}")
        return 1
    os.makedirs(baseline_dir, exist_ok=True)
    for name in fresh:
        dst = os.path.join(baseline_dir, name)
        verb = "updated" if os.path.exists(dst) else "added"
        shutil.copyfile(os.path.join(fresh_dir, name), dst)
        print(f"  {verb}  {dst}")
    print(f"{len(fresh)} baseline(s) written to {baseline_dir}; review the "
          f"diff and commit them with the change that moved the numbers")
    return 0


def self_test():
    """Exercises both gate directions against throwaway fixtures: a clean
    match passes, a fresh bench without a baseline fails, and a committed
    baseline without fresh output (orphan) fails. Run from ctest."""
    import subprocess
    import tempfile

    bench = {"bench": "demo", "checks": [], "failed": 0,
             "workloads": [{"label": "w", "queries": 4}], "scalars": []}

    def run_case(label, baselines, fresh, expect_rc, expect_text=None):
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "baselines")
            fresh_dir = os.path.join(tmp, "fresh")
            os.makedirs(base_dir)
            os.makedirs(fresh_dir)
            for name in baselines:
                with open(os.path.join(base_dir, name), "w",
                          encoding="utf-8") as f:
                    json.dump(bench, f)
            for name in fresh:
                with open(os.path.join(fresh_dir, name), "w",
                          encoding="utf-8") as f:
                    json.dump(bench, f)
            proc = subprocess.run(
                [sys.executable, os.path.abspath(__file__),
                 "--baseline-dir", base_dir, "--fresh-dir", fresh_dir],
                capture_output=True, text=True, check=False)
            ok = proc.returncode == expect_rc and (
                expect_text is None or expect_text in proc.stdout)
            print(f"  {'PASS' if ok else 'FAIL'}  {label} "
                  f"(rc={proc.returncode}, want {expect_rc})")
            if not ok:
                print(proc.stdout)
            return ok

    results = [
        run_case("matching baseline and fresh output",
                 ["BENCH_a.json"], ["BENCH_a.json"], 0),
        run_case("fresh bench without committed baseline",
                 ["BENCH_a.json"], ["BENCH_a.json", "BENCH_b.json"], 1,
                 "no committed baseline"),
        run_case("orphaned committed baseline (no fresh output)",
                 ["BENCH_a.json", "BENCH_b.json"], ["BENCH_a.json"], 1,
                 "ORPHAN"),
    ]
    return 0 if all(results) else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--fresh-dir",
                        help="directory holding freshly produced "
                             "BENCH_<name>.json files")
    parser.add_argument("--update-baselines", action="store_true",
                        help="adopt the fresh output as the new baselines "
                             "instead of comparing against them")
    parser.add_argument("--self-test", action="store_true",
                        help="exercise the gate against throwaway fixtures "
                             "and exit (used by ctest)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.fresh_dir:
        parser.error("--fresh-dir is required")

    if args.update_baselines:
        return update_baselines(args.fresh_dir, args.baseline_dir)

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"no BENCH_*.json baselines under {args.baseline_dir}")
        return 1

    # Check every baseline (never stop at the first failure) and bucket
    # the violations per bench for the summary table. A committed baseline
    # with no fresh output is an *orphan*: the bench was deleted or renamed
    # without retiring its baseline (or simply was not run), and nothing
    # would ever gate it again — fail and name it distinctly.
    per_bench = {}
    orphans = set()
    for name in baselines:
        bench = name[len("BENCH_"):-len(".json")]
        problems = per_bench.setdefault(bench, [])
        fresh_path = os.path.join(args.fresh_dir, name)
        if not os.path.exists(fresh_path):
            orphans.add(bench)
            problems.append(
                f"{bench}: committed baseline {name} is orphaned: no fresh "
                f"output in {args.fresh_dir} (bench deleted/renamed without "
                f"retiring its baseline, or not run)")
            continue
        compare(bench, load(os.path.join(args.baseline_dir, name)),
                load(fresh_path), problems)

    # A fresh result with no committed baseline means a new bench landed
    # without its reference numbers: nothing would ever gate it. Fail
    # loudly and point at the adoption path.
    for name in sorted(
            f for f in os.listdir(args.fresh_dir)
            if f.startswith("BENCH_") and f.endswith(".json")):
        if name in baselines:
            continue
        bench = name[len("BENCH_"):-len(".json")]
        per_bench.setdefault(bench, []).append(
            f"{bench}: fresh {name} has no committed baseline under "
            f"{args.baseline_dir}; adopt it with --update-baselines and "
            f"commit the result")

    total = sum(len(p) for p in per_bench.values())
    if total:
        print(f"bench-regression gate: {total} problem(s) across "
              f"{len(baselines)} baseline(s):")
        for bench in sorted(per_bench):
            for p in per_bench[bench]:
                print(f"  FAIL  {p}")

    width = max(len(b) for b in per_bench)
    print(f"\n  {'bench':<{width}}  result  problems")
    print(f"  {'-' * width}  ------  --------")
    for bench in sorted(per_bench):
        n = len(per_bench[bench])
        verdict = "ORPHAN" if bench in orphans else ("FAIL" if n else "PASS")
        print(f"  {bench:<{width}}  {verdict:<6}  {n if n else '-'}")
    failed = sum(1 for p in per_bench.values() if p)
    print(f"\nbench-regression gate: {len(per_bench) - failed}/"
          f"{len(per_bench)} bench(es) match their baselines"
          + (f" ({len(orphans)} orphaned baseline(s))" if orphans else ""))
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main())
