// fedtop — single-screen operations console for the federation testbed.
//
// Live mode (no file argument) builds the §5 scenario with the QCC
// attached, arms a demonstration fault schedule (fleet-wide congestion,
// then an S2 outage), drives an open-loop QT1/QT2 workload through it,
// and renders a dashboard frame at fixed virtual-time intervals: per-server
// health grade, calibration factor, breaker/availability state, active
// alerts and the recent event tail. Everything runs on the virtual clock,
// so the output is deterministic run-to-run.
//
// Serving mode (--serve) drives the same testbed through the wall-clock
// ServingRuntime instead: a closed-loop mixed workload on real worker
// threads, with the scheduler panel (dispatch lag, exclusion waits,
// worker utilization) and the lock-contention panel added to the screen.
// --follow re-renders the dashboard from periodic snapshots while the
// workload runs — a live `top` for the federation.
//
// Snapshot mode renders a saved snapshot file (as written by --json)
// without running anything — `fedtop saved.json` shows the exact screen
// the live run showed at capture time, scheduler/contention panels
// included.
//
//   fedtop [options]            live demo run (deterministic simulation)
//   fedtop --serve [options]    wall-clock serving demo run
//   fedtop <snapshot.json>      render a saved snapshot
//
// Options:
//   --frames N        sim: dashboard frames to render (default 5)
//   --horizon S       sim: virtual seconds to simulate (default 150)
//   --serve           serving-mode demo (wall clock, worker threads)
//   --workers N       serve: client worker threads (default 4)
//   --time-scale X    serve: wall seconds per virtual second (default 0.02)
//   --queries N       serve: instances per query type (default 8)
//   --follow          serve: live re-render while the workload runs
//   --interval S      serve: wall seconds between follow frames (default 0.5)
//   --profile         record per-operator runtime profiles (adds the
//                     accuracy panel to the screen and operator slices to
//                     the trace)
//   --json PATH       write the final health snapshot as JSON
//   --metrics PATH    write the final metrics snapshot as JSON
//   --events PATH     write the full event log as JSON
//   --trace PATH      write a Chrome/Perfetto trace of the run's spans
//   --profile-json P  write the last profiled query's operator profile as
//                     JSON (requires --profile)
//   --accuracy PATH   write the cost-model accuracy scoreboard as text
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/profile_export.h"
#include "obs/snapshot.h"
#include "obs/trace_export.h"
#include "sim/fault_injector.h"
#include "workload/runner.h"
#include "workload/scenario.h"

using namespace fedcal;  // NOLINT

namespace {

// Congestion chokes every server's network path mid-run; S2 then crashes
// outright and recovers. Both faults auto-revert, so the final frames show
// the alerts resolving as the fleet returns to healthy.
constexpr const char* kDemoSchedule = R"(# fedtop demo faults
at 30 congest S1 40 40 for 30
at 30 congest S2 40 40 for 30
at 30 congest S3 40 40 for 30
at 65 crash S2 for 15
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "fedtop: %s\n", message.c_str());
  return 1;
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) return false;
  out << body;
  return out.good();
}

int RenderSnapshotFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Fail("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto snapshot = obs::HealthSnapshotFromJson(buffer.str());
  if (!snapshot.ok()) {
    return Fail(path + ": " + snapshot.status().ToString());
  }
  std::printf("%s", obs::FedtopText(*snapshot).c_str());
  return 0;
}

struct Options {
  int frames = 5;
  double horizon_s = 150.0;
  bool serve = false;
  int workers = 4;
  double time_scale = 0.02;
  int queries_per_type = 8;
  bool follow = false;
  double interval_s = 0.5;
  bool profile = false;
  std::string json_path;
  std::string metrics_path;
  std::string events_path;
  std::string trace_path;
  std::string profile_json_path;
  std::string accuracy_path;
  std::string snapshot_file;  ///< non-empty = render-only mode
};

bool ParseArgs(int argc, char** argv, Options* opts, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        *error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--frames") {
      const char* v = value("--frames");
      if (v == nullptr) return false;
      opts->frames = std::atoi(v);
      if (opts->frames < 1) {
        *error = "--frames must be >= 1";
        return false;
      }
    } else if (arg == "--horizon") {
      const char* v = value("--horizon");
      if (v == nullptr) return false;
      opts->horizon_s = std::atof(v);
      if (opts->horizon_s <= 0.0) {
        *error = "--horizon must be positive";
        return false;
      }
    } else if (arg == "--serve") {
      opts->serve = true;
    } else if (arg == "--workers") {
      const char* v = value("--workers");
      if (v == nullptr) return false;
      opts->workers = std::atoi(v);
      if (opts->workers < 1) {
        *error = "--workers must be >= 1";
        return false;
      }
    } else if (arg == "--time-scale") {
      const char* v = value("--time-scale");
      if (v == nullptr) return false;
      opts->time_scale = std::atof(v);
      if (opts->time_scale < 0.0) {
        *error = "--time-scale must be >= 0";
        return false;
      }
    } else if (arg == "--queries") {
      const char* v = value("--queries");
      if (v == nullptr) return false;
      opts->queries_per_type = std::atoi(v);
      if (opts->queries_per_type < 1) {
        *error = "--queries must be >= 1";
        return false;
      }
    } else if (arg == "--follow") {
      opts->follow = true;
    } else if (arg == "--interval") {
      const char* v = value("--interval");
      if (v == nullptr) return false;
      opts->interval_s = std::atof(v);
      if (opts->interval_s <= 0.0) {
        *error = "--interval must be positive";
        return false;
      }
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (v == nullptr) return false;
      opts->json_path = v;
    } else if (arg == "--metrics") {
      const char* v = value("--metrics");
      if (v == nullptr) return false;
      opts->metrics_path = v;
    } else if (arg == "--events") {
      const char* v = value("--events");
      if (v == nullptr) return false;
      opts->events_path = v;
    } else if (arg == "--trace") {
      const char* v = value("--trace");
      if (v == nullptr) return false;
      opts->trace_path = v;
    } else if (arg == "--profile") {
      opts->profile = true;
    } else if (arg == "--profile-json") {
      const char* v = value("--profile-json");
      if (v == nullptr) return false;
      opts->profile_json_path = v;
    } else if (arg == "--accuracy") {
      const char* v = value("--accuracy");
      if (v == nullptr) return false;
      opts->accuracy_path = v;
    } else if (!arg.empty() && arg[0] == '-') {
      *error = "unknown option " + arg;
      return false;
    } else if (opts->snapshot_file.empty()) {
      opts->snapshot_file = arg;
    } else {
      *error = "at most one snapshot file";
      return false;
    }
  }
  if (opts->serve && !opts->snapshot_file.empty()) {
    *error = "--serve and a snapshot file are mutually exclusive";
    return false;
  }
  if (!opts->profile_json_path.empty() && !opts->profile) {
    *error = "--profile-json requires --profile";
    return false;
  }
  return true;
}

/// Writes the side outputs every live mode shares (snapshot JSON, metrics
/// JSON, event-log JSON, Chrome trace). Returns 0 or a Fail() code.
int WriteOutputs(const Options& opts, Scenario& sc,
                 const obs::HealthSnapshot& final_snap) {
  if (!opts.json_path.empty() &&
      !WriteFile(opts.json_path, obs::HealthSnapshotToJson(final_snap))) {
    return Fail("cannot write " + opts.json_path);
  }
  if (!opts.metrics_path.empty() &&
      !WriteFile(opts.metrics_path, sc.telemetry().metrics.ToJson())) {
    return Fail("cannot write " + opts.metrics_path);
  }
  if (!opts.events_path.empty() &&
      !WriteFile(opts.events_path,
                 obs::EventLogToJson(sc.telemetry().events))) {
    return Fail("cannot write " + opts.events_path);
  }
  if (!opts.trace_path.empty() &&
      !WriteFile(opts.trace_path,
                 // With the recorder attached, profiled queries render
                 // nested per-operator slices inside their exec spans.
                 obs::TraceExporter(&sc.telemetry().tracer,
                                    &sc.telemetry().recorder)
                     .ToChromeJson())) {
    return Fail("cannot write " + opts.trace_path);
  }
  if (!opts.profile_json_path.empty()) {
    // The most recent decision that carries a profile (the very last
    // query may have failed before producing one).
    const obs::QueryProfile* profile = nullptr;
    const auto& decisions = sc.telemetry().recorder.decisions();
    for (auto it = decisions.rbegin(); it != decisions.rend(); ++it) {
      if (it->profile != nullptr) {
        profile = it->profile.get();
        break;
      }
    }
    if (profile == nullptr) {
      return Fail("no profiled query to write to " + opts.profile_json_path);
    }
    if (!WriteFile(opts.profile_json_path, obs::ProfileToJson(*profile))) {
      return Fail("cannot write " + opts.profile_json_path);
    }
  }
  if (!opts.accuracy_path.empty() &&
      !WriteFile(opts.accuracy_path,
                 obs::AccuracyText(sc.telemetry().recorder))) {
    return Fail("cannot write " + opts.accuracy_path);
  }
  return 0;
}

int RunLive(const Options& opts) {
  ScenarioConfig cfg;
  cfg.large_rows = 20'000;
  cfg.small_rows = 1'000;
  cfg.profile = opts.profile;
  Scenario sc(cfg);
  sc.qcc().AttachTo(&sc.integrator());

  auto schedule = FaultSchedule::Parse(kDemoSchedule);
  if (!schedule.ok()) return Fail(schedule.status().ToString());
  if (Status s = sc.fault_injector().Arm(*schedule); !s.ok()) {
    return Fail(s.ToString());
  }

  // Alert windows tuned to the demo's time scale so the congestion phase
  // produces a visible latency-SLO burn and the crash an availability
  // alert, both resolving before the horizon.
  obs::HealthConfig health;
  health.fleet_latency.objective = 0.9;
  health.fleet_latency.fast_window_s = 10.0;
  health.fleet_latency.slow_window_s = 30.0;
  health.fleet_latency_threshold_s = 0.5;
  sc.telemetry().health.Configure(health);

  // Open-loop workload: one QT1 or QT2 query every half virtual second.
  // Fire-and-forget — failures during the outage are exactly what the
  // dashboard is there to show.
  int instance = 0;
  for (double t = 0.5; t < opts.horizon_s; t += 0.5) {
    const QueryType type =
        (instance % 2 == 0) ? QueryType::kQT1 : QueryType::kQT2;
    const std::string sql = sc.MakeQueryInstance(type, instance++);
    sc.sim().ScheduleAt(t, [&sc, sql] {
      auto compiled = sc.integrator().Compile(sql);
      if (!compiled.ok()) return;
      sc.integrator().Execute(*compiled, [](Result<QueryOutcome>) {});
    });
  }

  const double interval = opts.horizon_s / opts.frames;
  for (int frame = 1; frame <= opts.frames; ++frame) {
    sc.sim().RunUntil(interval * frame);
    const obs::HealthSnapshot snap = obs::BuildHealthSnapshot(
        sc.telemetry().health, sc.telemetry().recorder, sc.telemetry().events,
        sc.sim().Now(), sc.server_ids());
    std::printf("%s", obs::FedtopText(snap).c_str());
    if (frame < opts.frames) std::printf("\n");
  }

  const obs::HealthSnapshot final_snap = obs::BuildHealthSnapshot(
      sc.telemetry().health, sc.telemetry().recorder, sc.telemetry().events,
      sc.sim().Now(), sc.server_ids());
  return WriteOutputs(opts, sc, final_snap);
}

int RunServe(const Options& opts) {
  // Small tables + a visible time scale: per-query CPU stays far below
  // the time-scaled waits, so the run takes a few wall seconds and the
  // scheduler panel shows genuine dispatch gaps and overlapped waiting.
  ScenarioConfig cfg;
  cfg.large_rows = 2'000;
  cfg.small_rows = 200;
  cfg.exec_mode = ExecMode::kServing;
  cfg.serving_workers = opts.workers;
  cfg.serving_time_scale = opts.time_scale;
  cfg.profile = opts.profile;
  Scenario sc(cfg);
  QccConfig qcc;
  // Between submissions the dispatcher would free-run periodic probes
  // through unbounded virtual time — i.e. unbounded wall time once
  // scaled — so the daemon stays off, as in the serving benches.
  qcc.enable_availability_daemon = false;
  sc.qcc(qcc).AttachTo(&sc.integrator());

  // The health engine has no lock of its own: it is mutated from event
  // callbacks on the dispatcher thread, so snapshots are built inside
  // RunExclusive to join that mutual exclusion. The wait this costs shows
  // up — fittingly — in the panel's own "exclusive wait" row.
  auto build_snapshot = [&sc]() {
    obs::HealthSnapshot snap;
    sc.ctx().RunExclusive([&] {
      snap = obs::BuildHealthSnapshot(
          sc.telemetry().health, sc.telemetry().recorder,
          sc.telemetry().events, sc.ctx().Now(), sc.server_ids(),
          /*max_alerts=*/16, /*max_events=*/16, &sc.telemetry().metrics,
          /*include_locks=*/true);
    });
    return snap;
  };

  WorkloadRunner runner(&sc);
  std::atomic<bool> done{false};
  WorkloadResult result;
  std::thread driver([&] {
    result = runner.RunMixedWorkload(opts.queries_per_type,
                                     /*clients=*/opts.workers);
    done.store(true, std::memory_order_release);
  });

  if (opts.follow) {
    const auto interval = std::chrono::duration<double>(opts.interval_s);
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(interval);
      // \033[H\033[J: cursor home + clear — re-draw in place like top.
      std::printf("\033[H\033[J%s",
                  obs::FedtopText(build_snapshot()).c_str());
      std::fflush(stdout);
    }
  }
  driver.join();

  const obs::HealthSnapshot final_snap = build_snapshot();
  if (opts.follow) std::printf("\033[H\033[J");
  std::printf("%s", obs::FedtopText(final_snap).c_str());
  std::printf(
      "\nworkload: %zu queries, %zu failures, mean response %.3fs "
      "(virtual) over %.2f virtual seconds\n",
      result.measurements.size(), result.failures(), result.MeanResponse(),
      sc.ctx().Now());
  return WriteOutputs(opts, sc, final_snap);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::string error;
  if (!ParseArgs(argc, argv, &opts, &error)) return Fail(error);
  if (!opts.snapshot_file.empty()) {
    return RenderSnapshotFile(opts.snapshot_file);
  }
  return opts.serve ? RunServe(opts) : RunLive(opts);
}
